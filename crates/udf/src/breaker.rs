//! Deterministic circuit breaker around UDF evaluation.
//!
//! PR 4 gave `ApplyOp` a bounded retry loop for `udf_transient` faults: each
//! failing frame burns its retry budget, charges simulated backoff to the
//! [`SimClock`], and finally gives up with an `Exec` error. That protects one
//! frame, but a *persistently* failing model makes every subsequent frame
//! repeat the full retry dance — wasted simulated milliseconds and a noisy
//! failure mode. The breaker adds the classic closed → open → half-open state
//! machine on top:
//!
//! * **Closed** — evaluation proceeds; consecutive retry-budget exhaustions
//!   are counted. `K` in a row (no intervening success) trips the breaker.
//! * **Open** — evaluation fails fast with the same error class the retry
//!   path would produce, without burning retries. The breaker holds a
//!   SimClock deadline; once the clock passes it, the next check transitions
//!   to half-open.
//! * **Half-open** — exactly one probe evaluation is allowed through. A
//!   success closes the breaker and resets the cooldown ladder; a failure
//!   reopens it with the cooldown doubled (deterministic exponential
//!   backoff).
//!
//! ## Determinism
//!
//! Everything is denominated in **simulated** milliseconds and driven by the
//! seeded failpoint schedule, so breaker transitions are a pure function of
//! the workload: the same session replays to the same open/half-open counter
//! values on every run and at every worker-pool width (the breaker is only
//! consulted from the caller thread, like every other accounting structure).
//! Interior mutability is atomic so the breaker can be owned by `EvaDb` and
//! shared across queries, but the charging discipline keeps all transitions
//! on the caller thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eva_common::{EvaError, MetricsSink, Result, SimClock};

/// Consecutive retry-budget exhaustions that trip the breaker open.
pub const BREAKER_TRIP_THRESHOLD: u32 = 3;

/// First cooldown after tripping, in simulated milliseconds. Doubles on
/// every failed half-open probe.
pub const BREAKER_BASE_COOLDOWN_MS: f64 = 50.0;

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed { consecutive_exhaustions: u32 },
    Open { until_sim_ms: f64, cooldown_ms: f64 },
    HalfOpen { cooldown_ms: f64 },
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    times_opened: AtomicU64,
    times_halfopened: AtomicU64,
}

/// Circuit breaker for UDF evaluation; see the module docs for the state
/// machine. Cheap to clone (`Arc` inside); owned by `EvaDb`, threaded into
/// the executor via the exec `Context`, consulted by `ApplyOp` around the
/// retry loop.
#[derive(Debug, Clone)]
pub struct UdfBreaker {
    inner: Arc<Inner>,
}

impl Default for UdfBreaker {
    fn default() -> Self {
        UdfBreaker {
            inner: Arc::new(Inner {
                state: Mutex::new(State::Closed {
                    consecutive_exhaustions: 0,
                }),
                times_opened: AtomicU64::new(0),
                times_halfopened: AtomicU64::new(0),
            }),
        }
    }
}

impl UdfBreaker {
    /// Fresh breaker in the closed state.
    pub fn new() -> UdfBreaker {
        UdfBreaker::default()
    }

    /// Gate an evaluation attempt. Returns `Ok(())` when evaluation may
    /// proceed (closed, or half-open probe), or the fail-fast error when the
    /// breaker is open and the SimClock cooldown has not elapsed yet.
    ///
    /// The open → half-open transition happens *here*, on the first check
    /// after the cooldown deadline passes — there is no background timer, in
    /// keeping with the repo's cooperative, pull-driven design.
    pub fn check(&self, clock: &SimClock, metrics: &MetricsSink) -> Result<()> {
        let mut st = self.inner.state.lock().expect("breaker lock");
        match *st {
            State::Closed { .. } => Ok(()),
            State::Open {
                until_sim_ms,
                cooldown_ms,
            } => {
                if clock.total_ms() >= until_sim_ms {
                    *st = State::HalfOpen { cooldown_ms };
                    self.inner.times_halfopened.fetch_add(1, Ordering::Relaxed);
                    metrics.record_udf_breaker_halfopen();
                    Ok(())
                } else {
                    Err(EvaError::Exec(format!(
                        "udf circuit breaker is open (cooling down until \
                         {until_sim_ms:.1} sim-ms, now {:.1}); evaluation \
                         failed fast without burning retries",
                        clock.total_ms(),
                    )))
                }
            }
            State::HalfOpen { .. } => Ok(()),
        }
    }

    /// Record one retry-budget exhaustion (ApplyOp gave up on a frame).
    /// Trips the breaker after [`BREAKER_TRIP_THRESHOLD`] consecutive
    /// exhaustions, or immediately re-opens with a doubled cooldown if the
    /// exhaustion happened on a half-open probe.
    pub fn record_exhaustion(&self, clock: &SimClock, metrics: &MetricsSink) {
        let mut st = self.inner.state.lock().expect("breaker lock");
        match *st {
            State::Closed {
                consecutive_exhaustions,
            } => {
                let n = consecutive_exhaustions + 1;
                if n >= BREAKER_TRIP_THRESHOLD {
                    *st = State::Open {
                        until_sim_ms: clock.total_ms() + BREAKER_BASE_COOLDOWN_MS,
                        cooldown_ms: BREAKER_BASE_COOLDOWN_MS,
                    };
                    self.inner.times_opened.fetch_add(1, Ordering::Relaxed);
                    metrics.record_udf_breaker_open();
                } else {
                    *st = State::Closed {
                        consecutive_exhaustions: n,
                    };
                }
            }
            State::HalfOpen { cooldown_ms } => {
                let doubled = cooldown_ms * 2.0;
                *st = State::Open {
                    until_sim_ms: clock.total_ms() + doubled,
                    cooldown_ms: doubled,
                };
                self.inner.times_opened.fetch_add(1, Ordering::Relaxed);
                metrics.record_udf_breaker_open();
            }
            // Exhaustions reported while open (shouldn't happen — check()
            // fails fast first) leave the deadline alone.
            State::Open { .. } => {}
        }
    }

    /// Record a successful evaluation: closes a half-open breaker (resetting
    /// the cooldown ladder) and clears the consecutive-exhaustion streak.
    pub fn record_success(&self) {
        let mut st = self.inner.state.lock().expect("breaker lock");
        *st = State::Closed {
            consecutive_exhaustions: 0,
        };
    }

    /// Stable label for the current state: `"closed"`, `"open"`, or
    /// `"half-open"` (rendered by the REPL's `\health`).
    pub fn state_label(&self) -> &'static str {
        match *self.inner.state.lock().expect("breaker lock") {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half-open",
        }
    }

    /// Total closed→open and halfopen→open transitions since creation.
    pub fn times_opened(&self) -> u64 {
        self.inner.times_opened.load(Ordering::Relaxed)
    }

    /// Total open→half-open transitions since creation.
    pub fn times_halfopened(&self) -> u64 {
        self.inner.times_halfopened.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::clock::CostCategory;

    fn ctx() -> (SimClock, MetricsSink) {
        (SimClock::default(), MetricsSink::new())
    }

    #[test]
    fn stays_closed_below_threshold() {
        let (clock, metrics) = ctx();
        let b = UdfBreaker::new();
        for _ in 0..BREAKER_TRIP_THRESHOLD - 1 {
            b.record_exhaustion(&clock, &metrics);
            assert!(b.check(&clock, &metrics).is_ok());
        }
        assert_eq!(b.state_label(), "closed");
        assert_eq!(b.times_opened(), 0);
        assert_eq!(metrics.snapshot().udf_breaker_open, 0);
    }

    #[test]
    fn success_resets_the_streak() {
        let (clock, metrics) = ctx();
        let b = UdfBreaker::new();
        b.record_exhaustion(&clock, &metrics);
        b.record_exhaustion(&clock, &metrics);
        b.record_success();
        b.record_exhaustion(&clock, &metrics);
        b.record_exhaustion(&clock, &metrics);
        assert_eq!(b.state_label(), "closed");
        assert_eq!(b.times_opened(), 0);
    }

    #[test]
    fn trips_open_after_k_consecutive_and_fails_fast() {
        let (clock, metrics) = ctx();
        let b = UdfBreaker::new();
        for _ in 0..BREAKER_TRIP_THRESHOLD {
            b.record_exhaustion(&clock, &metrics);
        }
        assert_eq!(b.state_label(), "open");
        assert_eq!(b.times_opened(), 1);
        assert_eq!(metrics.snapshot().udf_breaker_open, 1);
        let err = b.check(&clock, &metrics).unwrap_err();
        assert_eq!(err.stage(), "exec");
        assert!(err.message().contains("circuit breaker is open"));
    }

    #[test]
    fn half_opens_on_simclock_cooldown_then_closes_on_success() {
        let (clock, metrics) = ctx();
        let b = UdfBreaker::new();
        for _ in 0..BREAKER_TRIP_THRESHOLD {
            b.record_exhaustion(&clock, &metrics);
        }
        assert!(b.check(&clock, &metrics).is_err());
        // Advance the simulated clock past the cooldown.
        clock.charge(CostCategory::Other, BREAKER_BASE_COOLDOWN_MS + 1.0);
        assert!(b.check(&clock, &metrics).is_ok());
        assert_eq!(b.state_label(), "half-open");
        assert_eq!(b.times_halfopened(), 1);
        assert_eq!(metrics.snapshot().udf_breaker_halfopen, 1);
        b.record_success();
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let (clock, metrics) = ctx();
        let b = UdfBreaker::new();
        for _ in 0..BREAKER_TRIP_THRESHOLD {
            b.record_exhaustion(&clock, &metrics);
        }
        clock.charge(CostCategory::Other, BREAKER_BASE_COOLDOWN_MS + 1.0);
        assert!(b.check(&clock, &metrics).is_ok()); // half-open probe
        b.record_exhaustion(&clock, &metrics); // probe failed
        assert_eq!(b.state_label(), "open");
        assert_eq!(b.times_opened(), 2);
        // Base cooldown has not elapsed against the *doubled* deadline.
        clock.charge(CostCategory::Other, BREAKER_BASE_COOLDOWN_MS + 1.0);
        assert!(b.check(&clock, &metrics).is_err());
        clock.charge(CostCategory::Other, BREAKER_BASE_COOLDOWN_MS + 1.0);
        assert!(b.check(&clock, &metrics).is_ok());
        assert_eq!(b.times_halfopened(), 2);
    }

    #[test]
    fn clones_share_state() {
        let (clock, metrics) = ctx();
        let a = UdfBreaker::new();
        let b = a.clone();
        for _ in 0..BREAKER_TRIP_THRESHOLD {
            a.record_exhaustion(&clock, &metrics);
        }
        assert_eq!(b.state_label(), "open");
    }
}
