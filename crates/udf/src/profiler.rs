//! Invocation statistics (Table 3) and hit accounting (Table 2).
//!
//! The execution engine reports every UDF invocation here: whether it was
//! *evaluated* (the model ran) or *reused* (satisfied from a materialized
//! view / cache). Distinct-input counts use the view-key identity.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use eva_storage::ViewKey;

/// UDFs cheaper than this per call are excluded from hit-percentage and
/// Eq. 7 accounting, mirroring the paper's Tables 2–3 which only count the
/// expensive UDFs (FasterRCNN, CarType, ColorDet) and not AREA.
pub const HIT_COST_THRESHOLD_MS: f64 = 1.0;

/// Per-UDF counters.
#[derive(Debug, Default, Clone)]
pub struct UdfCounters {
    /// Total invocations (`#TI`): evaluated + reused.
    pub total_invocations: u64,
    /// Invocations satisfied from materialized results.
    pub reused_invocations: u64,
    /// Distinct inputs seen (`#DI`).
    pub distinct_inputs: u64,
    /// Simulated milliseconds spent actually evaluating.
    pub eval_ms: f64,
    /// Profiled per-call cost (max observed), used to exclude cheap UDFs
    /// from aggregate metrics.
    pub per_call_ms: f64,
}

impl UdfCounters {
    /// Does this UDF count toward hit-percentage / Eq. 7 metrics?
    pub fn countable(&self) -> bool {
        self.per_call_ms >= HIT_COST_THRESHOLD_MS
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, UdfCounters>,
    distinct: BTreeMap<String, HashSet<ViewKey>>,
}

/// Thread-safe invocation statistics registry. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct InvocationStats {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("counters", &self.counters)
            .finish()
    }
}

impl InvocationStats {
    /// Fresh registry.
    pub fn new() -> InvocationStats {
        InvocationStats::default()
    }

    /// Record an invocation that ran the model.
    pub fn record_eval(&self, udf: &str, key: ViewKey, cost_ms: f64) {
        let mut inner = self.inner.lock();
        let c = inner.counters.entry(udf.to_string()).or_default();
        c.total_invocations += 1;
        c.eval_ms += cost_ms;
        c.per_call_ms = c.per_call_ms.max(cost_ms);
        if inner
            .distinct
            .entry(udf.to_string())
            .or_default()
            .insert(key)
        {
            inner
                .counters
                .get_mut(udf)
                .expect("just inserted")
                .distinct_inputs += 1;
        }
    }

    /// Record an invocation satisfied from materialized results.
    /// `cost_ms` is the cost evaluation *would* have paid.
    pub fn record_reuse(&self, udf: &str, key: ViewKey, cost_ms: f64) {
        let mut inner = self.inner.lock();
        let c = inner.counters.entry(udf.to_string()).or_default();
        c.total_invocations += 1;
        c.reused_invocations += 1;
        c.per_call_ms = c.per_call_ms.max(cost_ms);
        if inner
            .distinct
            .entry(udf.to_string())
            .or_default()
            .insert(key)
        {
            inner
                .counters
                .get_mut(udf)
                .expect("just inserted")
                .distinct_inputs += 1;
        }
    }

    /// Counters for one UDF.
    pub fn get(&self, udf: &str) -> UdfCounters {
        self.inner
            .lock()
            .counters
            .get(udf)
            .cloned()
            .unwrap_or_default()
    }

    /// Snapshot of all counters.
    pub fn all(&self) -> BTreeMap<String, UdfCounters> {
        self.inner.lock().counters.clone()
    }

    /// Aggregate hit percentage across the *expensive* UDFs — Table 2's
    /// metric: `reused / total × 100` (cheap UDFs like AREA excluded, as in
    /// the paper's tables).
    pub fn hit_percentage(&self) -> f64 {
        let inner = self.inner.lock();
        let countable = inner.counters.values().filter(|c| c.countable());
        let (total, reused) = countable.fold((0u64, 0u64), |(t, r), c| {
            (t + c.total_invocations, r + c.reused_invocations)
        });
        if total == 0 {
            0.0
        } else {
            reused as f64 / total as f64 * 100.0
        }
    }

    /// The reuse upper bound of Eq. 7's denominator: simulated cost if only
    /// distinct invocations were evaluated (Σ distinct × per-call cost must
    /// be supplied by the caller from the catalog).
    pub fn totals(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        let countable: Vec<&UdfCounters> =
            inner.counters.values().filter(|c| c.countable()).collect();
        let total: u64 = countable.iter().map(|c| c.total_invocations).sum();
        let distinct: u64 = countable.iter().map(|c| c.distinct_inputs).sum();
        (total, distinct)
    }

    /// Reset all counters (clean workload state).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.distinct.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::FrameId;

    #[test]
    fn counts_distinct_and_total() {
        let s = InvocationStats::new();
        let k0 = ViewKey::frame(FrameId(0));
        let k1 = ViewKey::frame(FrameId(1));
        s.record_eval("det", k0, 99.0);
        s.record_eval("det", k1, 99.0);
        s.record_reuse("det", k0, 99.0);
        let c = s.get("det");
        assert_eq!(c.total_invocations, 3);
        assert_eq!(c.distinct_inputs, 2);
        assert_eq!(c.reused_invocations, 1);
        assert_eq!(c.eval_ms, 198.0);
    }

    #[test]
    fn hit_percentage_over_all_udfs() {
        let s = InvocationStats::new();
        let k = ViewKey::frame(FrameId(0));
        s.record_eval("a", k, 1.0);
        s.record_reuse("a", k, 1.0);
        s.record_reuse("b", k, 1.0);
        s.record_eval("b", k, 1.0);
        assert!((s.hit_percentage() - 50.0).abs() < 1e-9);
        let (total, distinct) = s.totals();
        assert_eq!(total, 4);
        assert_eq!(distinct, 2);
    }

    #[test]
    fn empty_and_reset() {
        let s = InvocationStats::new();
        assert_eq!(s.hit_percentage(), 0.0);
        s.record_eval("a", ViewKey::frame(FrameId(0)), 1.0);
        s.reset();
        assert_eq!(s.get("a").total_invocations, 0);
        assert!(s.all().is_empty());
    }
}
