//! Runtime registry mapping `IMPL` ids to simulated models, plus the
//! standard zoo installation used by the benchmark and examples.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

use eva_catalog::{AccuracyLevel, Catalog, UdfDef};
use eva_common::{DataType, EvaError, Field, Result, Schema, UdfId};

use crate::runtime::SimUdf;
use crate::zoo::{AreaSim, BoxAttr, BoxAttrSim, ObjectDetectorSim, SpecializedFilterSim};

/// Thread-safe map from implementation id to simulated model.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    impls: Arc<RwLock<BTreeMap<String, Arc<dyn SimUdf>>>>,
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<String> = self.impls.read().keys().cloned().collect();
        f.debug_struct("UdfRegistry").field("impls", &keys).finish()
    }
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Register an implementation.
    pub fn register(&self, udf: Arc<dyn SimUdf>) {
        self.impls.write().insert(udf.impl_id().to_string(), udf);
    }

    /// Resolve an implementation id.
    pub fn get(&self, impl_id: &str) -> Result<Arc<dyn SimUdf>> {
        self.impls
            .read()
            .get(impl_id)
            .cloned()
            .ok_or_else(|| EvaError::Exec(format!("unknown UDF implementation '{impl_id}'")))
    }

    /// All registered implementation ids.
    pub fn impl_ids(&self) -> Vec<String> {
        self.impls.read().keys().cloned().collect()
    }
}

fn frame_input() -> Schema {
    Schema::new(vec![Field::new("frame", DataType::Frame)]).expect("valid")
}

fn frame_box_input() -> Schema {
    Schema::new(vec![
        Field::new("frame", DataType::Frame),
        Field::new("bbox", DataType::BBox),
    ])
    .expect("valid")
}

/// Install the paper's model zoo into a registry + catalog: the three object
/// detectors of Table 5, the attribute models of Table 3, AREA, LICENSE and
/// the §5.6 specialized filter. Costs are pre-profiled (the profiler would
/// measure the same constants the simulation charges).
pub fn install_standard_zoo(registry: &UdfRegistry, catalog: &Catalog) -> Result<()> {
    struct Entry {
        name: &'static str,
        udf: Arc<dyn SimUdf>,
        logical: Option<&'static str>,
        accuracy: AccuracyLevel,
        input: Schema,
    }

    let entries = vec![
        Entry {
            name: "fasterrcnn_resnet50",
            udf: Arc::new(ObjectDetectorSim::new(
                "sim/fasterrcnn_resnet50",
                99.0,
                37.9,
            )),
            logical: Some("objectdetector"),
            accuracy: AccuracyLevel::Medium,
            input: frame_input(),
        },
        Entry {
            name: "fasterrcnn_resnet101",
            udf: Arc::new(ObjectDetectorSim::new(
                "sim/fasterrcnn_resnet101",
                120.0,
                42.0,
            )),
            logical: Some("objectdetector"),
            accuracy: AccuracyLevel::High,
            input: frame_input(),
        },
        Entry {
            name: "yolo_tiny",
            udf: Arc::new(ObjectDetectorSim::new("sim/yolo_tiny", 9.0, 17.6)),
            logical: Some("objectdetector"),
            accuracy: AccuracyLevel::Low,
            input: frame_input(),
        },
        Entry {
            name: "cartype",
            udf: Arc::new(BoxAttrSim::new("sim/cartype", 6.0, true, BoxAttr::CarType)),
            logical: None,
            accuracy: AccuracyLevel::High,
            input: frame_box_input(),
        },
        Entry {
            name: "colordet",
            udf: Arc::new(BoxAttrSim::new("sim/colordet", 5.0, false, BoxAttr::Color)),
            logical: None,
            accuracy: AccuracyLevel::High,
            input: frame_box_input(),
        },
        Entry {
            name: "license",
            udf: Arc::new(BoxAttrSim::new("sim/license", 12.0, true, BoxAttr::License)),
            logical: None,
            accuracy: AccuracyLevel::High,
            input: frame_box_input(),
        },
        Entry {
            name: "area",
            udf: Arc::new(AreaSim::new()),
            logical: None,
            accuracy: AccuracyLevel::High,
            input: frame_box_input(),
        },
        Entry {
            name: "specialized_filter",
            udf: Arc::new(SpecializedFilterSim::new()),
            logical: None,
            accuracy: AccuracyLevel::Low,
            input: frame_input(),
        },
    ];

    for e in entries {
        let udf = Arc::clone(&e.udf);
        registry.register(Arc::clone(&udf));
        catalog.create_udf(
            UdfDef {
                id: UdfId(0),
                name: e.name.to_string(),
                input: e.input,
                output: (*udf.output_schema()).clone(),
                impl_id: udf.impl_id().to_string(),
                logical_type: e.logical.map(|s| s.to_string()),
                accuracy: e.accuracy,
                cost_ms: Some(udf.cost_ms()),
                gpu: udf.gpu(),
            },
            true,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_zoo_registers_everything() {
        let reg = UdfRegistry::new();
        let cat = Catalog::new();
        install_standard_zoo(&reg, &cat).unwrap();
        for name in [
            "fasterrcnn_resnet50",
            "fasterrcnn_resnet101",
            "yolo_tiny",
            "cartype",
            "colordet",
            "license",
            "area",
            "specialized_filter",
        ] {
            let def = cat.udf(name).unwrap();
            assert!(reg.get(&def.impl_id).is_ok(), "impl for {name}");
            assert!(def.cost_ms.is_some());
        }
        // Logical type wiring: three detectors.
        let dets = cat.physical_udfs("ObjectDetector", AccuracyLevel::Low);
        assert_eq!(dets.len(), 3);
        assert_eq!(dets[0].name, "yolo_tiny"); // cheapest first
    }

    #[test]
    fn unknown_impl_errors() {
        let reg = UdfRegistry::new();
        assert!(reg.get("nope").is_err());
    }

    #[test]
    fn costs_match_paper() {
        let reg = UdfRegistry::new();
        let cat = Catalog::new();
        install_standard_zoo(&reg, &cat).unwrap();
        assert_eq!(cat.udf("fasterrcnn_resnet50").unwrap().cost_ms, Some(99.0));
        assert_eq!(
            cat.udf("fasterrcnn_resnet101").unwrap().cost_ms,
            Some(120.0)
        );
        assert_eq!(cat.udf("yolo_tiny").unwrap().cost_ms, Some(9.0));
        assert_eq!(cat.udf("cartype").unwrap().cost_ms, Some(6.0));
        assert_eq!(cat.udf("colordet").unwrap().cost_ms, Some(5.0));
        assert!(!cat.udf("colordet").unwrap().gpu);
    }
}
