//! # eva-udf
//!
//! The UDF framework of EVA-RS: the simulated deep-learning **model zoo**,
//! UDF **signatures**, the invocation **profiler/statistics**, and the
//! **UdfManager** that tracks aggregated predicates and materialized views
//! per signature (paper §3.1 steps ①–②, §4.1).
//!
//! ## The simulation substitution
//!
//! The paper wraps PyTorch CNNs; here every model is a [`SimUdf`] that reads
//! ground truth from the synthetic dataset, perturbs it according to the
//! model's accuracy tier (misses, label flips and bbox noise derived from the
//! paper's boxAP numbers), and reports a per-tuple cost drawn from Table 3 /
//! Table 5 (99 ms for FasterRCNN-ResNet50, 9 ms for YOLO-tiny, …). The
//! execution engine charges that cost to the virtual clock. Detector output
//! is a *pure deterministic function of (model, frame)* — independent of
//! invocation order — which is what makes result reuse exact.

pub mod breaker;
pub mod manager;
pub mod profiler;
pub mod registry;
pub mod runtime;
pub mod signature;
pub mod zoo;

pub use breaker::{UdfBreaker, BREAKER_BASE_COOLDOWN_MS, BREAKER_TRIP_THRESHOLD};
pub use manager::{ReuseAnalysis, UdfManager, MANAGER_FILE};
pub use profiler::InvocationStats;
pub use registry::UdfRegistry;
pub use runtime::{SimUdf, UdfEvalContext};
pub use signature::UdfSignature;
