//! The simulated-UDF runtime interface.

use std::sync::Arc;

use eva_common::{BBox, FrameId, Result, Row, Schema};
use eva_storage::ViewKeyKind;
use eva_video::VideoDataset;

/// Evaluation context for one UDF invocation: which frame (and, for
/// box-level UDFs, which box) of which dataset.
#[derive(Debug, Clone, Copy)]
pub struct UdfEvalContext<'a> {
    /// Ground-truth source.
    pub dataset: &'a VideoDataset,
    /// The frame being processed.
    pub frame: FrameId,
    /// The bounding box (box-level UDFs only).
    pub bbox: Option<BBox>,
}

/// A simulated model. Implementations must be **pure**: the output depends
/// only on `(impl_id, frame, bbox)`, never on invocation order or history —
/// the property that makes materialized-result reuse exact.
pub trait SimUdf: Send + Sync {
    /// Implementation identifier matching `UdfDef::impl_id`.
    fn impl_id(&self) -> &str;

    /// Simulated per-tuple cost in milliseconds (charged by the executor).
    fn cost_ms(&self) -> f64;

    /// Whether inference runs on the GPU (reporting only).
    fn gpu(&self) -> bool {
        true
    }

    /// Output schema of one invocation's rows.
    fn output_schema(&self) -> Arc<Schema>;

    /// Materialized-view key granularity.
    fn key_kind(&self) -> ViewKeyKind;

    /// Evaluate on one input tuple. A detector returns one row per detected
    /// object (possibly zero rows); box-level UDFs return exactly one row.
    fn eval(&self, ctx: &UdfEvalContext<'_>) -> Result<Vec<Row>>;
}

/// Deterministic per-invocation randomness: a SplitMix64 stream keyed by
/// (salt, frame, extra). Every simulated model draws its misses and noise
/// from this, guaranteeing order-independence.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a stream for `(salt, frame, extra)`.
    pub fn new(salt: u64, frame: FrameId, extra: u64) -> DetRng {
        let mut s = salt ^ 0x6A09_E667_F3BC_C908;
        s = s
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(frame.raw().wrapping_mul(0xBF58476D1CE4E5B9));
        s = s.wrapping_add(extra.wrapping_mul(0x94D049BB133111EB));
        DetRng { state: s }
    }

    /// Next u64.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[-1, 1)`.
    pub fn next_signed(&mut self) -> f64 {
        self.next_f64() * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_rng_is_deterministic() {
        let mut a = DetRng::new(1, FrameId(5), 2);
        let mut b = DetRng::new(1, FrameId(5), 2);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_distinguishes_inputs() {
        let a = DetRng::new(1, FrameId(5), 2).next_u64();
        assert_ne!(DetRng::new(2, FrameId(5), 2).next_u64(), a);
        assert_ne!(DetRng::new(1, FrameId(6), 2).next_u64(), a);
        assert_ne!(DetRng::new(1, FrameId(5), 3).next_u64(), a);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(9, FrameId(0), 0);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }
}
