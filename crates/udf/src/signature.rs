//! UDF signatures (§3.1 step ②).
//!
//! A signature `S_u = [N_u; I_u]` is the fingerprint under which results are
//! shared across queries: the (physical) UDF name plus the sources it reads.
//! Two invocations with the same signature compute the same function over
//! the same inputs, so their results are interchangeable.
//!
//! Box-level UDFs (CarType, ColorDet…) take `(frame, bbox)` arguments; their
//! views key on `(frame, bbox)`, so the signature records the *source table*
//! and argument shape but not the upstream detector — results transfer
//! across detectors automatically when (and only when) the boxes coincide.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A UDF signature: physical UDF name + canonical input rendering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UdfSignature {
    /// Physical UDF name (lowercase).
    pub name: String,
    /// Canonical rendering of the inputs `I_u` — the source table plus the
    /// argument columns.
    pub inputs: String,
}

impl UdfSignature {
    /// Build a signature from the UDF name, the source table, and the
    /// argument column names.
    pub fn new(name: &str, table: &str, args: &[&str]) -> UdfSignature {
        UdfSignature {
            name: name.to_ascii_lowercase(),
            inputs: format!(
                "{}({})",
                table.to_ascii_lowercase(),
                args.join(",").to_ascii_lowercase()
            ),
        }
    }
}

impl fmt::Display for UdfSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_normalize_case() {
        let a = UdfSignature::new("CarType", "Video", &["frame", "bbox"]);
        let b = UdfSignature::new("cartype", "video", &["FRAME", "BBOX"]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "cartype@video(frame,bbox)");
    }

    #[test]
    fn different_tables_differ() {
        let a = UdfSignature::new("det", "video1", &["frame"]);
        let b = UdfSignature::new("det", "video2", &["frame"]);
        assert_ne!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let a = UdfSignature::new("yolo", "v", &["frame"]);
        let b = UdfSignature::new("rcnn", "v", &["frame"]);
        assert_ne!(a, b);
    }
}
