//! The simulated model zoo.
//!
//! Costs and accuracies mirror the paper's Tables 3 and 5:
//!
//! | model | per-tuple cost | boxAP | tier |
//! |---|---|---|---|
//! | YOLO-tiny | 9 ms | 17.6 | LOW |
//! | FasterRCNN-ResNet50 | 99 ms | 37.9 | MEDIUM |
//! | FasterRCNN-ResNet101 | 120 ms | 42.0 | HIGH |
//! | CarType | 6 ms | — | — |
//! | ColorDet | 5 ms (CPU) | — | — |
//! | License | 12 ms | — | — |
//! | Area | ~0 ms | — | — |
//! | SpecializedFilter (2-conv) | 1.5 ms | — | — |
//!
//! A detector with boxAP `a` detects each ground-truth object with
//! probability increasing in `a` and the object's visibility, perturbs the
//! box by noise decreasing in `a`, and occasionally flips vehicle labels.
//! Higher-accuracy models therefore emit **more** detections — reproducing
//! the paper's Fig. 10 observation that reusing a high-accuracy view makes
//! dependent UDFs process more objects.

use std::sync::Arc;

use eva_common::{BBox, DataType, EvaError, Field, Result, Row, Schema, Value};
use eva_storage::ViewKeyKind;
use eva_video::{ObjectClass, TrackedObject};

use crate::runtime::{DetRng, SimUdf, UdfEvalContext};

fn salt_of(impl_id: &str) -> u64 {
    eva_common::hash::xxhash64(impl_id.as_bytes(), 0x5EED)
}

// ---------------------------------------------------------------------------
// Object detectors
// ---------------------------------------------------------------------------

/// A simulated object-detection model.
#[derive(Debug, Clone)]
pub struct ObjectDetectorSim {
    impl_id: String,
    cost_ms: f64,
    /// COCO boxAP of the simulated model (17.6 / 37.9 / 42.0 in the paper).
    boxap: f64,
    schema: Arc<Schema>,
    salt: u64,
}

impl ObjectDetectorSim {
    /// Build a detector with the given profile.
    pub fn new(impl_id: &str, cost_ms: f64, boxap: f64) -> ObjectDetectorSim {
        ObjectDetectorSim {
            impl_id: impl_id.to_string(),
            cost_ms,
            boxap,
            schema: Arc::new(detector_output_schema()),
            salt: salt_of(impl_id),
        }
    }

    /// Detection probability for one object.
    fn p_detect(&self, obj: &TrackedObject) -> f64 {
        // boxAP 17.6 → base ≈ 0.55; 37.9 → ≈ 0.86; 42 → ≈ 0.92.
        let base = (0.25 + self.boxap / 55.0).min(0.97);
        (base * (0.55 + 0.55 * obj.visibility as f64)).min(0.99)
    }

    /// Box-coordinate noise amplitude.
    fn noise_amp(&self) -> f32 {
        (0.0015 + (1.0 - self.boxap / 50.0) * 0.004) as f32
    }
}

/// Output schema of every object detector: `(label, bbox, score)`.
pub fn detector_output_schema() -> Schema {
    Schema::new(vec![
        Field::new("label", DataType::Str),
        Field::new("bbox", DataType::BBox),
        Field::new("score", DataType::Float),
    ])
    .expect("static schema is valid")
}

impl SimUdf for ObjectDetectorSim {
    fn impl_id(&self) -> &str {
        &self.impl_id
    }

    fn cost_ms(&self) -> f64 {
        self.cost_ms
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn key_kind(&self) -> ViewKeyKind {
        ViewKeyKind::Frame
    }

    fn eval(&self, ctx: &UdfEvalContext<'_>) -> Result<Vec<Row>> {
        let frame = ctx
            .dataset
            .frame(ctx.frame)
            .ok_or_else(|| EvaError::Exec(format!("frame {} out of range", ctx.frame)))?;
        let mut out = Vec::with_capacity(frame.objects.len());
        for obj in &frame.objects {
            let mut rng = DetRng::new(self.salt, ctx.frame, obj.track_id);
            if rng.next_f64() >= self.p_detect(obj) {
                continue; // missed detection
            }
            // Perturb the box deterministically.
            let amp = self.noise_amp();
            let b = obj.bbox;
            let bbox = BBox::new(
                b.x1 + rng.next_signed() as f32 * amp,
                b.y1 + rng.next_signed() as f32 * amp,
                b.x2 + rng.next_signed() as f32 * amp,
                b.y2 + rng.next_signed() as f32 * amp,
            )
            .clamped();
            // Label flips are rarer for better models.
            let flip_p = (1.0 - self.boxap / 50.0) * 0.06;
            let label = if obj.is_vehicle() && rng.next_f64() < flip_p {
                match obj.class {
                    ObjectClass::Car => "truck",
                    _ => "car",
                }
            } else {
                obj.class.label()
            };
            let score = 0.5 + 0.5 * self.p_detect(obj) * (0.8 + 0.2 * rng.next_f64());
            out.push(vec![
                Value::from(label),
                Value::from(bbox),
                Value::Float(score.min(1.0)),
            ]);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Box-level attribute models
// ---------------------------------------------------------------------------

/// Which vehicle attribute a [`BoxAttrSim`] extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxAttr {
    /// Vehicle make (CarType UDF).
    CarType,
    /// Dominant color (ColorDet UDF).
    Color,
    /// License plate (License UDF).
    License,
}

/// A simulated box-level classifier: matches the query box against ground
/// truth by IoU and reports the matched object's attribute, with a small
/// deterministic error rate.
#[derive(Debug, Clone)]
pub struct BoxAttrSim {
    impl_id: String,
    cost_ms: f64,
    gpu: bool,
    attr: BoxAttr,
    schema: Arc<Schema>,
    salt: u64,
}

impl BoxAttrSim {
    /// Build an attribute model.
    pub fn new(impl_id: &str, cost_ms: f64, gpu: bool, attr: BoxAttr) -> BoxAttrSim {
        let out_col = match attr {
            BoxAttr::CarType => "cartype",
            BoxAttr::Color => "color",
            BoxAttr::License => "license",
        };
        BoxAttrSim {
            impl_id: impl_id.to_string(),
            cost_ms,
            gpu,
            attr,
            schema: Arc::new(
                Schema::new(vec![Field::new(out_col, DataType::Str)]).expect("valid schema"),
            ),
            salt: salt_of(impl_id),
        }
    }
}

impl SimUdf for BoxAttrSim {
    fn impl_id(&self) -> &str {
        &self.impl_id
    }

    fn cost_ms(&self) -> f64 {
        self.cost_ms
    }

    fn gpu(&self) -> bool {
        self.gpu
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn key_kind(&self) -> ViewKeyKind {
        ViewKeyKind::FrameBox
    }

    fn eval(&self, ctx: &UdfEvalContext<'_>) -> Result<Vec<Row>> {
        let bbox = ctx
            .bbox
            .ok_or_else(|| EvaError::Exec(format!("{} requires a bbox argument", self.impl_id)))?;
        let frame = ctx
            .dataset
            .frame(ctx.frame)
            .ok_or_else(|| EvaError::Exec(format!("frame {} out of range", ctx.frame)))?;
        // Match against ground truth by IoU.
        let best = frame
            .objects
            .iter()
            .map(|o| (o, o.bbox.iou(&bbox)))
            .filter(|(_, iou)| *iou >= 0.4)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let value = match best {
            Some((obj, _)) => {
                // Deterministic key on the *quantized box*, not the track, so
                // results are reproducible from the arguments alone.
                let key = bbox.key();
                let extra = key.iter().fold(0u64, |acc, k| {
                    acc.wrapping_mul(65_537).wrapping_add(*k as u64)
                });
                let mut rng = DetRng::new(self.salt, ctx.frame, extra);
                let err = rng.next_f64() < 0.03;
                match self.attr {
                    BoxAttr::CarType => match (&obj.car_type, err) {
                        (Some(t), false) => t.clone(),
                        (Some(_), true) => "unknown".to_string(),
                        (None, _) => "unknown".to_string(),
                    },
                    BoxAttr::Color => {
                        if err {
                            "unknown".to_string()
                        } else {
                            obj.color.clone()
                        }
                    }
                    BoxAttr::License => match (&obj.license, err) {
                        (Some(l), false) => l.clone(),
                        _ => "unreadable".to_string(),
                    },
                }
            }
            None => match self.attr {
                BoxAttr::License => "unreadable".to_string(),
                _ => "unknown".to_string(),
            },
        };
        Ok(vec![vec![Value::from(value)]])
    }
}

// ---------------------------------------------------------------------------
// Cheap UDFs
// ---------------------------------------------------------------------------

/// The AREA UDF: relative box area. Cheap — the optimizer's candidate filter
/// (§3.1 step ①) excludes it from materialization.
#[derive(Debug, Clone)]
pub struct AreaSim {
    schema: Arc<Schema>,
}

impl AreaSim {
    /// Build the area UDF.
    pub fn new() -> AreaSim {
        AreaSim {
            schema: Arc::new(
                Schema::new(vec![Field::new("area", DataType::Float)]).expect("valid schema"),
            ),
        }
    }
}

impl Default for AreaSim {
    fn default() -> Self {
        AreaSim::new()
    }
}

impl SimUdf for AreaSim {
    fn impl_id(&self) -> &str {
        "builtin/area"
    }

    fn cost_ms(&self) -> f64 {
        0.001
    }

    fn gpu(&self) -> bool {
        false
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn key_kind(&self) -> ViewKeyKind {
        ViewKeyKind::FrameBox
    }

    fn eval(&self, ctx: &UdfEvalContext<'_>) -> Result<Vec<Row>> {
        let bbox = ctx
            .bbox
            .ok_or_else(|| EvaError::Exec("area requires a bbox argument".into()))?;
        Ok(vec![vec![Value::Float(bbox.area() as f64)]])
    }
}

/// The specialized filter of §5.6: a lightweight 2-conv-layer binary
/// classifier answering "does this frame contain a vehicle?". Materialized
/// like any other UDF when cheap enough to matter.
#[derive(Debug, Clone)]
pub struct SpecializedFilterSim {
    schema: Arc<Schema>,
    salt: u64,
}

impl SpecializedFilterSim {
    /// Build the filter.
    pub fn new() -> SpecializedFilterSim {
        SpecializedFilterSim {
            schema: Arc::new(
                Schema::new(vec![Field::new("hasvehicle", DataType::Str)]).expect("valid schema"),
            ),
            salt: salt_of("sim/specialized_filter"),
        }
    }
}

impl Default for SpecializedFilterSim {
    fn default() -> Self {
        SpecializedFilterSim::new()
    }
}

impl SimUdf for SpecializedFilterSim {
    fn impl_id(&self) -> &str {
        "sim/specialized_filter"
    }

    fn cost_ms(&self) -> f64 {
        // Two conv layers on the GPU: lightweight but above the
        // materialization threshold — "since these filters are lightweight
        // UDFs, we also materialize their results whenever possible" (§5.6).
        1.5
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn key_kind(&self) -> ViewKeyKind {
        ViewKeyKind::Frame
    }

    fn eval(&self, ctx: &UdfEvalContext<'_>) -> Result<Vec<Row>> {
        let frame = ctx
            .dataset
            .frame(ctx.frame)
            .ok_or_else(|| EvaError::Exec(format!("frame {} out of range", ctx.frame)))?;
        let has = frame.objects.iter().any(|o| o.is_vehicle());
        // A two-conv filter tuned for high recall errs heavily toward
        // passing frames (the paper's §5.6 gain on Jackson is only ~1.3×,
        // implying the filter forwards most frames); false *negatives* are
        // zero so the filter never drops true work.
        let mut rng = DetRng::new(self.salt, ctx.frame, 0);
        let answer = has || rng.next_f64() < 0.65;
        Ok(vec![vec![Value::from(if answer {
            "true"
        } else {
            "false"
        })]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::FrameId;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn dataset() -> eva_video::VideoDataset {
        generate(VideoConfig {
            name: "t".into(),
            n_frames: 60,
            width: 960,
            height: 540,
            fps: 25.0,
            target_density: 6.0,
            person_fraction: 0.0,
            seed: 21,
        })
    }

    fn rcnn101() -> ObjectDetectorSim {
        ObjectDetectorSim::new("sim/rcnn101", 120.0, 42.0)
    }

    fn yolo() -> ObjectDetectorSim {
        ObjectDetectorSim::new("sim/yolo_tiny", 9.0, 17.6)
    }

    #[test]
    fn detector_is_deterministic() {
        let ds = dataset();
        let det = rcnn101();
        let ctx = UdfEvalContext {
            dataset: &ds,
            frame: FrameId(10),
            bbox: None,
        };
        assert_eq!(det.eval(&ctx).unwrap(), det.eval(&ctx).unwrap());
    }

    #[test]
    fn higher_accuracy_detects_more() {
        let ds = dataset();
        let hi = rcnn101();
        let lo = yolo();
        let mut hi_n = 0;
        let mut lo_n = 0;
        for f in 0..60 {
            let ctx = UdfEvalContext {
                dataset: &ds,
                frame: FrameId(f),
                bbox: None,
            };
            hi_n += hi.eval(&ctx).unwrap().len();
            lo_n += lo.eval(&ctx).unwrap().len();
        }
        assert!(hi_n > lo_n, "high-acc should detect more: {hi_n} vs {lo_n}");
    }

    #[test]
    fn detections_stay_close_to_ground_truth() {
        let ds = dataset();
        let det = rcnn101();
        let ctx = UdfEvalContext {
            dataset: &ds,
            frame: FrameId(5),
            bbox: None,
        };
        let rows = det.eval(&ctx).unwrap();
        let gt = &ds.frame(FrameId(5)).unwrap().objects;
        for row in &rows {
            let b = row[1].as_bbox().unwrap();
            let best = gt.iter().map(|o| o.bbox.iou(&b)).fold(0.0f32, f32::max);
            assert!(best > 0.7, "detection box far from any GT (IoU {best})");
            let score = row[2].as_float().unwrap();
            assert!((0.0..=1.0).contains(&score));
        }
    }

    #[test]
    fn cartype_matches_ground_truth() {
        let ds = dataset();
        let det = rcnn101();
        let ct = BoxAttrSim::new("sim/cartype", 6.0, true, BoxAttr::CarType);
        let frame = FrameId(3);
        let detections = det
            .eval(&UdfEvalContext {
                dataset: &ds,
                frame,
                bbox: None,
            })
            .unwrap();
        let gt = &ds.frame(frame).unwrap().objects;
        let mut matched = 0;
        for row in &detections {
            let b = row[1].as_bbox().unwrap();
            let out = ct
                .eval(&UdfEvalContext {
                    dataset: &ds,
                    frame,
                    bbox: Some(b),
                })
                .unwrap();
            let got = out[0][0].as_str().unwrap().to_string();
            if let Some(obj) = gt
                .iter()
                .filter(|o| o.bbox.iou(&b) >= 0.4)
                .max_by(|a, b2| a.bbox.iou(&b).partial_cmp(&b2.bbox.iou(&b)).unwrap())
            {
                if got == obj.car_type.clone().unwrap_or_default() {
                    matched += 1;
                }
            }
        }
        assert!(
            matched * 10 >= detections.len() * 8,
            "cartype accuracy too low: {matched}/{}",
            detections.len()
        );
    }

    #[test]
    fn box_attr_requires_bbox() {
        let ds = dataset();
        let ct = BoxAttrSim::new("sim/cartype", 6.0, true, BoxAttr::CarType);
        let r = ct.eval(&UdfEvalContext {
            dataset: &ds,
            frame: FrameId(0),
            bbox: None,
        });
        assert!(r.is_err());
    }

    #[test]
    fn unmatched_box_is_unknown() {
        let ds = dataset();
        let ct = BoxAttrSim::new("sim/cartype", 6.0, true, BoxAttr::CarType);
        // A tiny box in a corner matches nothing at IoU 0.4.
        let out = ct
            .eval(&UdfEvalContext {
                dataset: &ds,
                frame: FrameId(0),
                bbox: Some(BBox::new(0.001, 0.001, 0.002, 0.002)),
            })
            .unwrap();
        assert_eq!(out[0][0].as_str().unwrap(), "unknown");
        let lic = BoxAttrSim::new("sim/license", 12.0, true, BoxAttr::License);
        let out = lic
            .eval(&UdfEvalContext {
                dataset: &ds,
                frame: FrameId(0),
                bbox: Some(BBox::new(0.001, 0.001, 0.002, 0.002)),
            })
            .unwrap();
        assert_eq!(out[0][0].as_str().unwrap(), "unreadable");
    }

    #[test]
    fn area_computes_box_area() {
        let ds = dataset();
        let area = AreaSim::new();
        let b = BBox::new(0.1, 0.1, 0.5, 0.6);
        let out = area
            .eval(&UdfEvalContext {
                dataset: &ds,
                frame: FrameId(0),
                bbox: Some(b),
            })
            .unwrap();
        let v = out[0][0].as_float().unwrap();
        assert!((v - 0.2).abs() < 1e-6);
        assert!(area.cost_ms() < 0.01, "area must be cheap");
    }

    #[test]
    fn specialized_filter_flags_vehicle_frames() {
        let ds = dataset();
        let filter = SpecializedFilterSim::new();
        let mut true_count = 0;
        for f in 0..60 {
            let frame_has = ds
                .frame(FrameId(f))
                .unwrap()
                .objects
                .iter()
                .any(|o| o.is_vehicle());
            let out = filter
                .eval(&UdfEvalContext {
                    dataset: &ds,
                    frame: FrameId(f),
                    bbox: None,
                })
                .unwrap();
            let says = out[0][0].as_str().unwrap() == "true";
            if frame_has {
                assert!(says, "filter must be high-recall (frame {f})");
            }
            if says {
                true_count += 1;
            }
        }
        assert!(true_count > 0);
    }

    #[test]
    fn costs_match_paper_tables() {
        assert_eq!(ObjectDetectorSim::new("a", 99.0, 37.9).cost_ms(), 99.0);
        assert_eq!(yolo().cost_ms(), 9.0);
        assert_eq!(rcnn101().cost_ms(), 120.0);
        assert_eq!(
            BoxAttrSim::new("c", 6.0, true, BoxAttr::CarType).cost_ms(),
            6.0
        );
        assert_eq!(
            BoxAttrSim::new("c", 5.0, false, BoxAttr::Color).cost_ms(),
            5.0
        );
    }
}
