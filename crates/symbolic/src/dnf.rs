//! Disjunctive-normal-form predicates and the paper's Algorithm 1.
//!
//! A [`Dnf`] is a union of [`Conjunct`]s. The derived predicates of §4.1 —
//! [`inter`], [`diff`], [`union`] — and the reduction procedure
//! [`Dnf::reduce`] (Algorithm 1: per-conjunct normalization plus repeated
//! `ReduceUnionConjunctives` until a fixpoint or budget exhaustion) are
//! implemented here.
//!
//! All operations are *exact* over the supported predicate grammar, which is
//! what allows the optimizer to soundly skip UDF evaluation when the
//! difference predicate reduces to FALSE.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use eva_common::Value;

use crate::conjunct::{Conjunct, Constraint};

/// Budget limiting symbolic work, standing in for the paper's wall-clock
/// "time budget" with a deterministic step count.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Remaining pairwise-reduction steps.
    pub steps: usize,
    /// Maximum conjuncts allowed in an intermediate DNF before an operation
    /// gives up (complement/intersection blow-up guard).
    pub max_conjuncts: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            steps: 10_000,
            max_conjuncts: 512,
        }
    }
}

impl Budget {
    /// A tiny budget for tests exercising the give-up paths.
    pub fn tiny() -> Budget {
        Budget {
            steps: 2,
            max_conjuncts: 4,
        }
    }

    fn step(&mut self) -> bool {
        if self.steps == 0 {
            return false;
        }
        self.steps -= 1;
        true
    }
}

/// A predicate in disjunctive normal form: the union of its conjuncts.
/// Empty conjunct list ⇒ FALSE; a universal conjunct ⇒ TRUE.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dnf {
    conjuncts: Vec<Conjunct>,
}

impl Dnf {
    /// FALSE.
    pub fn false_() -> Dnf {
        Dnf::default()
    }

    /// TRUE.
    pub fn true_() -> Dnf {
        Dnf {
            conjuncts: vec![Conjunct::universal()],
        }
    }

    /// From conjuncts, dropping unsatisfiable ones and collapsing to TRUE
    /// when any conjunct is universal.
    pub fn from_conjuncts(conjuncts: Vec<Conjunct>) -> Dnf {
        let mut keep: Vec<Conjunct> = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            if c.is_unsat() {
                continue;
            }
            if c.is_universal() {
                return Dnf::true_();
            }
            keep.push(c);
        }
        Dnf { conjuncts: keep }
    }

    /// Single-conjunct DNF.
    pub fn conjunct(c: Conjunct) -> Dnf {
        Dnf::from_conjuncts(vec![c])
    }

    /// The conjuncts.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Is this FALSE? Exact because conjunct emptiness is exact.
    pub fn is_false(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Is this literally TRUE (a universal conjunct is present)?
    pub fn is_true(&self) -> bool {
        self.conjuncts.iter().any(Conjunct::is_universal)
    }

    /// Union of two predicates (no reduction applied — callers reduce).
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut cs = self.conjuncts.clone();
        cs.extend(other.conjuncts.iter().cloned());
        Dnf::from_conjuncts(cs)
    }

    /// Intersection via pairwise conjunct products.
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut out = Vec::with_capacity(self.conjuncts.len() * other.conjuncts.len());
        for a in &self.conjuncts {
            for b in &other.conjuncts {
                let c = a.intersect(b);
                if !c.is_unsat() {
                    out.push(c);
                }
            }
        }
        Dnf::from_conjuncts(out)
    }

    /// Complement. Returns `None` if the intermediate DNF exceeds the budget
    /// (callers treat that as "analysis unavailable" and forgo reuse).
    pub fn complement(&self, budget: &mut Budget) -> Option<Dnf> {
        // ¬(C1 ∨ … ∨ Ck) = ¬C1 ∧ … ∧ ¬Ck where each ¬Ci is a small DNF.
        let mut acc = Dnf::true_();
        for c in &self.conjuncts {
            let neg = Dnf::from_conjuncts(c.complement());
            acc = acc.and(&neg);
            if acc.conjuncts.len() > budget.max_conjuncts {
                return None;
            }
            acc.reduce(budget);
        }
        Some(acc)
    }

    /// Exact subset test with budgeted complement; `false` on budget blowout
    /// (the conservative direction — never claims coverage it cannot prove).
    pub fn is_subset(&self, other: &Dnf) -> bool {
        let mut budget = Budget::default();
        match other.complement(&mut budget) {
            Some(not_other) => self.and(&not_other).is_false(),
            None => false,
        }
    }

    /// Point membership — the semantics oracle used by property tests.
    pub fn contains_point(&self, point: &BTreeMap<String, Value>) -> bool {
        self.conjuncts.iter().any(|c| c.contains_point(point))
    }

    /// Total atomic formulas (the Fig. 7 metric).
    pub fn atom_count(&self) -> usize {
        if self.is_false() {
            return 1; // the literal FALSE
        }
        self.conjuncts.iter().map(Conjunct::atom_count).sum()
    }

    /// All dimensions mentioned anywhere in the predicate.
    pub fn dims(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for c in &self.conjuncts {
            out.extend(c.dims().keys().cloned());
        }
        out
    }

    /// Algorithm 1 of the paper: repeatedly pop pairs of conjuncts and try
    /// to reduce their union (subset absorption, single-dimension merge, or
    /// overlap trimming), until no pair changes or the budget runs out.
    ///
    /// Per-conjunct reduction (step ② of Algorithm 1) is implicit: the
    /// interval/category sets inside each conjunct are always canonical.
    pub fn reduce(&mut self, budget: &mut Budget) {
        loop {
            let mut changed = false;
            'pairs: for i in 0..self.conjuncts.len() {
                for j in (i + 1)..self.conjuncts.len() {
                    if !budget.step() {
                        return;
                    }
                    if let Some(repl) =
                        reduce_union_conjunctives(&self.conjuncts[i], &self.conjuncts[j])
                    {
                        // Replace pair (i, j) with the reduction result.
                        self.conjuncts.swap_remove(j);
                        self.conjuncts.swap_remove(i);
                        for c in repl {
                            if c.is_universal() {
                                *self = Dnf::true_();
                                return;
                            }
                            if !c.is_unsat() {
                                self.conjuncts.push(c);
                            }
                        }
                        changed = true;
                        break 'pairs;
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Convenience: reduce with a fresh default budget.
    pub fn reduced(mut self) -> Dnf {
        let mut b = Budget::default();
        self.reduce(&mut b);
        self
    }

    /// Rewrite into a union of pairwise-disjoint conjuncts by sequential
    /// subtraction with staircase complements
    /// ([`Conjunct::complement_disjoint`]); used before additive selectivity
    /// estimation. Gives up (returns a clone) past the budget.
    pub fn disjointed(&self, budget: &mut Budget) -> Dnf {
        let mut out: Vec<Conjunct> = Vec::with_capacity(self.conjuncts.len());
        for c in &self.conjuncts {
            // piece = c ∧ ¬(already-emitted cells), built so that every
            // intermediate stays a disjoint family.
            let mut piece = vec![c.clone()];
            for prev in out.clone() {
                let neg_prev = prev.complement_disjoint();
                let mut next = Vec::new();
                for p in &piece {
                    for n in &neg_prev {
                        let cell = p.intersect(n);
                        if !cell.is_unsat() {
                            next.push(cell);
                        }
                    }
                }
                piece = next;
                if piece.len() + out.len() > budget.max_conjuncts {
                    return self.clone();
                }
            }
            out.extend(piece);
        }
        Dnf::from_conjuncts(out)
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "FALSE");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// `ReduceUnionConjunctives` from Algorithm 1, generalized to N dimensions:
/// if one conjunct is a subset of the other in at least N−1 dimensions the
/// union can be simplified. Returns `None` when no reduction applies.
///
/// Cases (Fig. 2 of the paper):
/// * **i** — full subset: drop the smaller conjunct.
/// * **ii** — equal in all dimensions but one: merge by set union on the
///   remaining dimension (concatenation).
/// * **iii** — subset in all dimensions but one: trim the overlapping region
///   out of the smaller conjunct, making the pair disjoint.
pub fn reduce_union_conjunctives(c1: &Conjunct, c2: &Conjunct) -> Option<Vec<Conjunct>> {
    // Case i in both directions.
    if c2.is_subset(c1) {
        return Some(vec![c1.clone()]);
    }
    if c1.is_subset(c2) {
        return Some(vec![c2.clone()]);
    }

    // Case ii: identical except one dimension → single merged conjunct.
    let differing = c1.differing_dims(c2);
    if differing.len() == 1 {
        let d = &differing[0];
        let merged_constraint = union_in_dim(c1, c2, d)?;
        return Some(vec![c1.clone().with_dim(d, merged_constraint)]);
    }

    // Case iii: subset in all dims but exactly one → trim overlap.
    if let Some(out) = trim_overlap(c1, c2) {
        return Some(out);
    }
    if let Some(out) = trim_overlap(c2, c1) {
        return Some(out.into_iter().rev().collect());
    }
    None
}

/// Union of the two conjuncts' constraints on dimension `d`, treating a
/// missing constraint as full.
fn union_in_dim(c1: &Conjunct, c2: &Conjunct, d: &str) -> Option<Constraint> {
    match (c1.constraint(d), c2.constraint(d)) {
        (Some(a), Some(b)) => a.union(b),
        // One side unconstrained ⇒ union is full. Represent via the
        // complement trick: full = k ∪ ¬k.
        (Some(a), None) | (None, Some(a)) => a.union(&a.complement()),
        (None, None) => None,
    }
}

/// If `small` ⊆ `big` in every dimension except exactly one, subtract `big`'s
/// range from `small` on that dimension (Fig. 2 case iii). Returns the
/// replacement pair `[big, trimmed-small]`, or `[big]` when the trim empties
/// `small`, or `None` when the precondition fails or nothing would change.
fn trim_overlap(big: &Conjunct, small: &Conjunct) -> Option<Vec<Conjunct>> {
    let mut odd_dim: Option<String> = None;
    let mut all_dims: BTreeSet<&String> = big.dims().keys().collect();
    all_dims.extend(small.dims().keys());
    for d in all_dims {
        let sub = match (small.constraint(d), big.constraint(d)) {
            (Some(s), Some(b)) => s.is_subset(b),
            (None, Some(_)) => false, // full ⊄ partial
            (_, None) => true,        // anything ⊆ full
        };
        if !sub {
            if odd_dim.is_some() {
                return None; // more than one violating dimension
            }
            odd_dim = Some(d.clone());
        }
    }
    let d = odd_dim?; // None ⇒ full subset, handled by case i already
    let s_k = small.constraint(&d)?.clone();
    let b_k = big.constraint(&d).cloned().unwrap_or(match &s_k {
        Constraint::Num(_) => Constraint::Num(crate::interval::IntervalSet::full()),
        Constraint::Cat(_) => Constraint::Cat(crate::catset::CatSet::full()),
    });
    let trimmed = s_k.difference(&b_k)?;
    if trimmed == s_k {
        return None; // already disjoint — nothing gained
    }
    let new_small = small.clone().with_dim(&d, trimmed);
    if new_small.is_unsat() {
        Some(vec![big.clone()])
    } else {
        Some(vec![big.clone(), new_small])
    }
}

// ---------------------------------------------------------------------------
// Derived predicates of §4.1.
// ---------------------------------------------------------------------------

/// `INTER(p1, p2) = p1 ∧ p2` — tuples where the new invocation may reuse.
pub fn inter(p1: &Dnf, p2: &Dnf) -> Dnf {
    let mut b = Budget::default();
    let mut out = p1.and(p2);
    out.reduce(&mut b);
    out
}

/// `DIFF(p1, p2) = ¬p1 ∧ p2` — tuples where the UDF must still run.
/// Returns TRUE-over-p2 (i.e. `p2` itself) when the complement blows the
/// budget: conservatively assume nothing is covered.
pub fn diff(p1: &Dnf, p2: &Dnf) -> Dnf {
    let mut b = Budget::default();
    match p1.complement(&mut b) {
        Some(not_p1) => {
            let mut out = not_p1.and(p2);
            out.reduce(&mut b);
            out
        }
        None => p2.clone(),
    }
}

/// `UNION(p1, p2) = p1 ∨ p2` — tuples covered after both run.
pub fn union(p1: &Dnf, p2: &Dnf) -> Dnf {
    let mut b = Budget::default();
    let mut out = p1.or(p2);
    out.reduce(&mut b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catset::CatSet;
    use crate::interval::IntervalSet;

    fn range(dim: &str, lo: f64, hi: f64) -> Conjunct {
        Conjunct::universal().constrain(
            dim,
            Constraint::Num(IntervalSet::interval(lo, false, hi, false)),
        )
    }

    fn cat(dim: &str, v: &str) -> Conjunct {
        Conjunct::universal().constrain(dim, Constraint::Cat(CatSet::only(v)))
    }

    fn pt(entries: &[(&str, Value)]) -> BTreeMap<String, Value> {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn true_false_identities() {
        assert!(Dnf::false_().is_false());
        assert!(Dnf::true_().is_true());
        let p = Dnf::conjunct(range("x", 0.0, 1.0));
        assert_eq!(p.or(&Dnf::false_()), p);
        assert!(p.and(&Dnf::false_()).is_false());
        assert!(p.or(&Dnf::true_()).is_true());
        assert_eq!(p.and(&Dnf::true_()), p);
    }

    #[test]
    fn case_i_subset_absorbed() {
        // c2 ⊆ c1 in both dims → union = c1 (Fig. 2 case i).
        let c1 = range("x", 0.0, 10.0).intersect(&range("y", 0.0, 10.0));
        let c2 = range("x", 2.0, 5.0).intersect(&range("y", 3.0, 4.0));
        let u = union(&Dnf::conjunct(c1.clone()), &Dnf::conjunct(c2));
        assert_eq!(u.conjuncts().len(), 1);
        assert_eq!(u.conjuncts()[0], c1);
    }

    #[test]
    fn case_ii_concatenation() {
        // Same y range, adjacent x ranges → single merged rectangle.
        let c1 = range("x", 0.0, 5.0).intersect(&range("y", 0.0, 10.0));
        let c2 = range("x", 5.0, 9.0).intersect(&range("y", 0.0, 10.0));
        let u = union(&Dnf::conjunct(c1), &Dnf::conjunct(c2));
        assert_eq!(u.conjuncts().len(), 1);
        let merged = &u.conjuncts()[0];
        assert!(merged.contains_point(&pt(&[("x", Value::Float(7.0)), ("y", Value::Float(1.0))])));
        assert_eq!(u.atom_count(), 4);
    }

    #[test]
    fn case_iii_overlap_trim() {
        // c2 ⊆ c1 in y only; overlapping x → c2 trimmed to disjoint piece.
        let c1 = range("x", 0.0, 6.0).intersect(&range("y", 0.0, 10.0));
        let c2 = range("x", 4.0, 9.0).intersect(&range("y", 2.0, 8.0));
        let u = union(&Dnf::conjunct(c1.clone()), &Dnf::conjunct(c2));
        assert_eq!(u.conjuncts().len(), 2);
        // Semantics preserved at sample points.
        for (x, y, expect) in [
            (5.0, 5.0, true),  // only in c1∪c2 via both
            (8.0, 5.0, true),  // in c2 only
            (8.0, 9.0, false), // outside both (y > 8 for c2, x > 6 for c1)
            (3.0, 9.5, true),  // c1 only
        ] {
            assert_eq!(
                u.contains_point(&pt(&[("x", Value::Float(x)), ("y", Value::Float(y))])),
                expect,
                "point ({x},{y})"
            );
        }
    }

    #[test]
    fn no_reduction_for_diagonal_rectangles() {
        // Overlap in both dims with no subset relation in N-1 dims: stays 2.
        let c1 = range("x", 0.0, 5.0).intersect(&range("y", 0.0, 5.0));
        let c2 = range("x", 3.0, 9.0).intersect(&range("y", 3.0, 9.0));
        let u = union(&Dnf::conjunct(c1), &Dnf::conjunct(c2));
        assert_eq!(u.conjuncts().len(), 2);
    }

    #[test]
    fn paper_polyadic_example() {
        // UNION(5<x ∧ 10<y, 10<x ∧ 15<y) → 5<x ∧ 10<y
        let c1 = Conjunct::universal()
            .constrain("x", Constraint::Num(IntervalSet::greater_than(5.0, false)))
            .constrain("y", Constraint::Num(IntervalSet::greater_than(10.0, false)));
        let c2 = Conjunct::universal()
            .constrain("x", Constraint::Num(IntervalSet::greater_than(10.0, false)))
            .constrain("y", Constraint::Num(IntervalSet::greater_than(15.0, false)));
        let u = union(&Dnf::conjunct(c1.clone()), &Dnf::conjunct(c2));
        assert_eq!(u.conjuncts().len(), 1);
        assert_eq!(u.conjuncts()[0], c1);
        assert_eq!(u.atom_count(), 2);
    }

    #[test]
    fn inter_and_diff_semantics() {
        let p1 = Dnf::conjunct(range("id", 0.0, 100.0));
        let p2 = Dnf::conjunct(range("id", 50.0, 150.0));
        let i = inter(&p1, &p2);
        let d = diff(&p1, &p2);
        for v in [25.0, 75.0, 125.0] {
            let point = pt(&[("id", Value::Float(v))]);
            let in_p1 = p1.contains_point(&point);
            let in_p2 = p2.contains_point(&point);
            assert_eq!(i.contains_point(&point), in_p1 && in_p2, "inter at {v}");
            assert_eq!(d.contains_point(&point), !in_p1 && in_p2, "diff at {v}");
        }
    }

    #[test]
    fn diff_false_when_fully_covered() {
        let p1 = Dnf::conjunct(range("id", 0.0, 100.0));
        let p2 = Dnf::conjunct(range("id", 10.0, 20.0));
        assert!(diff(&p1, &p2).is_false());
        // And inter is p2 itself.
        assert_eq!(inter(&p1, &p2), p2);
    }

    #[test]
    fn complement_exact_on_small_predicates() {
        let p = Dnf::conjunct(range("x", 0.0, 1.0).intersect(&cat("l", "car")));
        let mut b = Budget::default();
        let n = p.complement(&mut b).unwrap();
        for (x, l, inside) in [(0.5, "car", true), (0.5, "bus", false), (2.0, "car", false)] {
            let point = pt(&[("x", Value::Float(x)), ("l", Value::from(l))]);
            assert_eq!(p.contains_point(&point), inside);
            assert_eq!(n.contains_point(&point), !inside);
        }
    }

    #[test]
    fn subset_test() {
        let small = Dnf::conjunct(range("x", 2.0, 3.0));
        let big = Dnf::conjunct(range("x", 0.0, 5.0));
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        // Union of pieces covering `small`.
        let pieces = Dnf::from_conjuncts(vec![range("x", 0.0, 2.5), range("x", 2.5, 5.0)]);
        assert!(small.is_subset(&pieces));
    }

    #[test]
    fn budget_exhaustion_is_conservative() {
        // With a tiny budget, diff() falls back to p2 (assume nothing reused).
        let mut cs1 = Vec::new();
        for i in 0..10 {
            cs1.push(
                range("x", i as f64 * 10.0, i as f64 * 10.0 + 5.0).intersect(&range("y", 0.0, 1.0)),
            );
        }
        let p1 = Dnf::from_conjuncts(cs1);
        let _p2 = Dnf::conjunct(range("x", 0.0, 100.0));
        let mut tiny = Budget::tiny();
        assert!(p1.complement(&mut tiny).is_none());
    }

    #[test]
    fn reduce_handles_repeated_overlaps() {
        // A chain of overlapping intervals on one dim collapses to one.
        let mut cs = Vec::new();
        for i in 0..8 {
            cs.push(range("id", i as f64 * 10.0, i as f64 * 10.0 + 15.0));
        }
        let p = Dnf::from_conjuncts(cs).reduced();
        assert_eq!(p.conjuncts().len(), 1);
        assert_eq!(p.atom_count(), 2);
    }

    #[test]
    fn disjointed_preserves_semantics() {
        let p = Dnf::from_conjuncts(vec![
            range("x", 0.0, 5.0).intersect(&range("y", 0.0, 5.0)),
            range("x", 3.0, 9.0).intersect(&range("y", 3.0, 9.0)),
        ]);
        let mut b = Budget::default();
        let d = p.disjointed(&mut b);
        for x in [1.0, 4.0, 8.0] {
            for y in [1.0, 4.0, 8.0] {
                let point = pt(&[("x", Value::Float(x)), ("y", Value::Float(y))]);
                assert_eq!(p.contains_point(&point), d.contains_point(&point));
            }
        }
        // Disjointness: no point should be in two conjuncts.
        for x in [1.0, 4.0, 8.0] {
            for y in [1.0, 4.0, 8.0] {
                let point = pt(&[("x", Value::Float(x)), ("y", Value::Float(y))]);
                let n = d
                    .conjuncts()
                    .iter()
                    .filter(|c| c.contains_point(&point))
                    .count();
                assert!(n <= 1, "point ({x},{y}) in {n} conjuncts");
            }
        }
    }

    #[test]
    fn atom_count_of_false_is_one() {
        assert_eq!(Dnf::false_().atom_count(), 1);
        assert_eq!(Dnf::true_().atom_count(), 0);
    }

    #[test]
    fn dims_collects_all() {
        let p = Dnf::from_conjuncts(vec![range("a", 0.0, 1.0), cat("b", "x")]);
        let dims: Vec<String> = p.dims().into_iter().collect();
        assert_eq!(dims, vec!["a".to_string(), "b".to_string()]);
    }
}
