//! Histogram-based selectivity estimation.
//!
//! The paper: "EVA leverages existing histogram-based methods in traditional
//! database systems to calculate the selectivity of predicates" (§4.2). The
//! ranking function (Eq. 4) and the set-cover weights (Alg. 2) both consume
//! selectivities of symbolic predicates; this module supplies them from
//! per-dimension statistics built by `ANALYZE`-style sampling.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::catset::CatSet;
use crate::conjunct::{Conjunct, Constraint};
use crate::dnf::{Budget, Dnf};
use crate::interval::IntervalSet;

/// Default selectivity guess for dimensions with no statistics — the
/// classic System-R style magic constant for equality-ish predicates.
pub const DEFAULT_UNKNOWN_SELECTIVITY: f64 = 0.3;

/// Statistics for one dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnStats {
    /// Numeric dimension: equi-width histogram.
    Numeric {
        /// Domain minimum observed.
        min: f64,
        /// Domain maximum observed.
        max: f64,
        /// Fraction of rows per bucket (sums to ~1). Buckets split
        /// `[min, max]` evenly.
        buckets: Vec<f64>,
    },
    /// Categorical dimension: value frequencies.
    Categorical {
        /// Fraction of rows per observed value.
        freqs: BTreeMap<String, f64>,
        /// Fraction of rows holding values not listed in `freqs`.
        other: f64,
    },
}

impl ColumnStats {
    /// Build numeric stats from samples with `n_buckets` equi-width buckets.
    pub fn numeric_from_samples(samples: &[f64], n_buckets: usize) -> ColumnStats {
        let n_buckets = n_buckets.max(1);
        if samples.is_empty() {
            return ColumnStats::Numeric {
                min: 0.0,
                max: 1.0,
                buckets: vec![0.0; n_buckets],
            };
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = (max - min).max(f64::MIN_POSITIVE);
        let mut buckets = vec![0.0; n_buckets];
        for &s in samples {
            let i = (((s - min) / width) * n_buckets as f64) as usize;
            buckets[i.min(n_buckets - 1)] += 1.0;
        }
        let total = samples.len() as f64;
        for b in &mut buckets {
            *b /= total;
        }
        ColumnStats::Numeric { min, max, buckets }
    }

    /// Build categorical stats from value counts.
    pub fn categorical_from_counts<I: IntoIterator<Item = (String, u64)>>(
        counts: I,
    ) -> ColumnStats {
        let counts: BTreeMap<String, u64> = counts.into_iter().collect();
        let total: u64 = counts.values().sum();
        let total = total.max(1) as f64;
        ColumnStats::Categorical {
            freqs: counts
                .into_iter()
                .map(|(k, v)| (k, v as f64 / total))
                .collect(),
            other: 0.0,
        }
    }

    /// Estimated fraction of rows satisfying the constraint.
    pub fn selectivity(&self, k: &Constraint) -> f64 {
        match (self, k) {
            (ColumnStats::Numeric { min, max, buckets }, Constraint::Num(set)) => {
                numeric_selectivity(*min, *max, buckets, set)
            }
            (ColumnStats::Categorical { freqs, other }, Constraint::Cat(set)) => {
                categorical_selectivity(freqs, *other, set)
            }
            // Kind mismatch: the binder got it wrong; fall back to the guess.
            _ => {
                if k.is_full() {
                    1.0
                } else if k.is_empty() {
                    0.0
                } else {
                    DEFAULT_UNKNOWN_SELECTIVITY
                }
            }
        }
    }
}

fn numeric_selectivity(min: f64, max: f64, buckets: &[f64], set: &IntervalSet) -> f64 {
    if set.is_full() {
        return 1.0;
    }
    if set.is_empty() {
        return 0.0;
    }
    if buckets.is_empty() || max <= min {
        return if set.contains(min) { 1.0 } else { 0.0 };
    }
    let width = (max - min) / buckets.len() as f64;
    let mut sel = 0.0;
    for (i, frac) in buckets.iter().enumerate() {
        let lo = min + width * i as f64;
        let hi = lo + width;
        sel += frac * set.measure_within(lo, hi);
    }
    sel.clamp(0.0, 1.0)
}

fn categorical_selectivity(freqs: &BTreeMap<String, f64>, other: f64, set: &CatSet) -> f64 {
    match set {
        CatSet::In(vals) => {
            let mut sel = 0.0;
            let mut unknown = 0usize;
            for v in vals {
                match freqs.get(v) {
                    Some(f) => sel += f,
                    None => unknown += 1,
                }
            }
            // Unknown values share the "other" mass uniformly (guess: split
            // across up to 10 unseen values).
            if unknown > 0 && other > 0.0 {
                sel += other * (unknown as f64 / 10.0).min(1.0);
            }
            sel.clamp(0.0, 1.0)
        }
        CatSet::NotIn(vals) => {
            let inc = categorical_selectivity(freqs, other, &CatSet::In(vals.clone()));
            (1.0 - inc).clamp(0.0, 1.0)
        }
    }
}

/// Per-dimension statistics registry used by the optimizer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsCatalog {
    stats: BTreeMap<String, ColumnStats>,
}

impl StatsCatalog {
    /// Empty catalog (every estimate falls back to defaults).
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    /// Register statistics for a dimension.
    pub fn insert(&mut self, dim: impl Into<String>, stats: ColumnStats) {
        self.stats.insert(dim.into().to_ascii_lowercase(), stats);
    }

    /// Stats for a dimension, if known.
    pub fn get(&self, dim: &str) -> Option<&ColumnStats> {
        self.stats.get(&dim.to_ascii_lowercase())
    }

    /// Registered dimension names.
    pub fn dims(&self) -> impl Iterator<Item = &String> {
        self.stats.keys()
    }

    /// Selectivity of one constraint on one dimension.
    pub fn constraint_selectivity(&self, dim: &str, k: &Constraint) -> f64 {
        match self.get(dim) {
            Some(s) => s.selectivity(k),
            None => {
                if k.is_full() {
                    1.0
                } else if k.is_empty() {
                    0.0
                } else {
                    DEFAULT_UNKNOWN_SELECTIVITY
                }
            }
        }
    }

    /// Selectivity of a conjunct under the independence assumption the paper
    /// also adopts (footnote to Theorem 4.1).
    pub fn conjunct_selectivity(&self, c: &Conjunct) -> f64 {
        if c.is_unsat() {
            return 0.0;
        }
        c.dims()
            .iter()
            .map(|(d, k)| self.constraint_selectivity(d, k))
            .product()
    }

    /// Selectivity of a DNF. The predicate is first made disjoint so the
    /// per-conjunct estimates can be summed; on budget blow-up it falls back
    /// to the noisy-or combination.
    pub fn dnf_selectivity(&self, p: &Dnf) -> f64 {
        if p.is_false() {
            return 0.0;
        }
        if p.is_true() {
            return 1.0;
        }
        let mut budget = Budget::default();
        let disjoint = p.disjointed(&mut budget);
        if disjoint != *p || disjoint.conjuncts().len() >= p.conjuncts().len() {
            let sum: f64 = disjoint
                .conjuncts()
                .iter()
                .map(|c| self.conjunct_selectivity(c))
                .sum();
            return sum.clamp(0.0, 1.0);
        }
        // Fallback: independence-based noisy-or.
        let mut not_sel = 1.0;
        for c in p.conjuncts() {
            not_sel *= 1.0 - self.conjunct_selectivity(c);
        }
        (1.0 - not_sel).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_int_stats(lo: f64, hi: f64) -> ColumnStats {
        // 10 equal buckets over [lo, hi].
        ColumnStats::Numeric {
            min: lo,
            max: hi,
            buckets: vec![0.1; 10],
        }
    }

    #[test]
    fn numeric_range_selectivity_uniform() {
        let s = uniform_int_stats(0.0, 1000.0);
        let half = Constraint::Num(IntervalSet::less_than(500.0, false));
        let sel = s.selectivity(&half);
        assert!((sel - 0.5).abs() < 0.01, "sel={sel}");
        let tenth = Constraint::Num(IntervalSet::interval(100.0, false, 200.0, false));
        assert!((s.selectivity(&tenth) - 0.1).abs() < 0.01);
    }

    #[test]
    fn numeric_skewed_histogram() {
        // 90% of mass in first bucket.
        let s = ColumnStats::Numeric {
            min: 0.0,
            max: 100.0,
            buckets: vec![0.9, 0.1],
        };
        let first_half = Constraint::Num(IntervalSet::less_than(50.0, false));
        assert!((s.selectivity(&first_half) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn numeric_from_samples() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = ColumnStats::numeric_from_samples(&samples, 20);
        let sel = s.selectivity(&Constraint::Num(IntervalSet::less_than(250.0, false)));
        assert!((sel - 0.25).abs() < 0.06, "sel={sel}");
    }

    #[test]
    fn categorical_selectivity() {
        let s = ColumnStats::categorical_from_counts([
            ("car".to_string(), 80u64),
            ("bus".to_string(), 20u64),
        ]);
        let car = Constraint::Cat(CatSet::only("car"));
        assert!((s.selectivity(&car) - 0.8).abs() < 1e-9);
        let not_car = Constraint::Cat(CatSet::except("car"));
        assert!((s.selectivity(&not_car) - 0.2).abs() < 1e-9);
        let unseen = Constraint::Cat(CatSet::only("truck"));
        assert_eq!(s.selectivity(&unseen), 0.0);
    }

    #[test]
    fn unknown_dimension_uses_default() {
        let cat = StatsCatalog::new();
        let k = Constraint::Cat(CatSet::only("car"));
        assert_eq!(
            cat.constraint_selectivity("mystery", &k),
            DEFAULT_UNKNOWN_SELECTIVITY
        );
        assert_eq!(
            cat.constraint_selectivity("mystery", &Constraint::Cat(CatSet::full())),
            1.0
        );
    }

    #[test]
    fn conjunct_independence_product() {
        let mut cat = StatsCatalog::new();
        cat.insert("id", uniform_int_stats(0.0, 1000.0));
        cat.insert(
            "label",
            ColumnStats::categorical_from_counts([
                ("car".to_string(), 50u64),
                ("bus".to_string(), 50u64),
            ]),
        );
        let c = Conjunct::universal()
            .constrain("id", Constraint::Num(IntervalSet::less_than(500.0, false)))
            .constrain("label", Constraint::Cat(CatSet::only("car")));
        let sel = cat.conjunct_selectivity(&c);
        assert!((sel - 0.25).abs() < 0.01, "sel={sel}");
        assert_eq!(cat.conjunct_selectivity(&Conjunct::unsat()), 0.0);
        assert_eq!(cat.conjunct_selectivity(&Conjunct::universal()), 1.0);
    }

    #[test]
    fn dnf_selectivity_overlapping_union() {
        let mut cat = StatsCatalog::new();
        cat.insert("id", uniform_int_stats(0.0, 1000.0));
        // [0,500] ∪ [400,600] → exact coverage 0.6
        let a = Conjunct::universal().constrain(
            "id",
            Constraint::Num(IntervalSet::interval(0.0, false, 500.0, false)),
        );
        let b = Conjunct::universal().constrain(
            "id",
            Constraint::Num(IntervalSet::interval(400.0, false, 600.0, false)),
        );
        let p = Dnf::from_conjuncts(vec![a, b]);
        let sel = cat.dnf_selectivity(&p);
        assert!((sel - 0.6).abs() < 0.02, "sel={sel}");
        assert_eq!(cat.dnf_selectivity(&Dnf::false_()), 0.0);
        assert_eq!(cat.dnf_selectivity(&Dnf::true_()), 1.0);
    }

    #[test]
    fn stats_catalog_case_insensitive() {
        let mut cat = StatsCatalog::new();
        cat.insert(
            "Label",
            ColumnStats::categorical_from_counts([("x".to_string(), 1u64)]),
        );
        assert!(cat.get("label").is_some());
        assert!(cat.get("LABEL").is_some());
    }
}
