//! Conversion between [`Expr`] predicates and symbolic [`Dnf`] form.
//!
//! The optimizer analyzes predicates symbolically ([`to_dnf`]) and turns the
//! derived predicates back into executable filters ([`dnf_to_expr`]). A
//! predicate dimension is either a plain column (`id`, `label`, `area`) or a
//! *UDF output symbol* — the canonical rendering of a UDF call such as
//! `cartype(frame, bbox)` — so predicates over UDF results participate in the
//! same algebra as column predicates.

use eva_common::{EvaError, Result, Value};
use eva_expr::{CmpOp, Expr, UdfCall};

use crate::catset::CatSet;
use crate::conjunct::{Conjunct, Constraint};
use crate::dnf::Dnf;
use crate::interval::IntervalSet;

/// Canonical dimension name for a UDF call: lowercase name + *sorted*
/// argument renderings, so `CarType(frame, bbox)` and `CarType(bbox, frame)`
/// name the same dimension (the paper's queries use both orders — Listing 1
/// writes `VEHICLE_COLOR(bbox, frame)`). Accuracy constraints are
/// deliberately *excluded* — the logical task defines the dimension;
/// physical model choice happens later (§4.3).
pub fn udf_dim(call: &UdfCall) -> String {
    let mut args: Vec<String> = call.args.iter().map(|a| a.to_string()).collect();
    args.sort_unstable();
    format!("{}({})", call.name, args.join(","))
}

/// The dimension denoted by one side of a comparison, if any.
fn dim_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Column(c) => Some(c.clone()),
        Expr::Udf(u) => Some(udf_dim(u)),
        _ => None,
    }
}

fn constraint_for(op: CmpOp, lit: &Value) -> Result<Constraint> {
    match lit {
        Value::Int(_) | Value::Float(_) => {
            let v = lit.as_float()?;
            let set = match op {
                CmpOp::Eq => IntervalSet::point(v),
                CmpOp::Ne => IntervalSet::not_equal(v),
                CmpOp::Lt => IntervalSet::less_than(v, false),
                CmpOp::Le => IntervalSet::less_than(v, true),
                CmpOp::Gt => IntervalSet::greater_than(v, false),
                CmpOp::Ge => IntervalSet::greater_than(v, true),
            };
            Ok(Constraint::Num(set))
        }
        Value::Str(s) => match op {
            CmpOp::Eq => Ok(Constraint::Cat(CatSet::only(s.clone()))),
            CmpOp::Ne => Ok(Constraint::Cat(CatSet::except(s.clone()))),
            _ => Err(EvaError::Plan(format!(
                "unsupported string comparison '{op}' in symbolic analysis"
            ))),
        },
        Value::Bool(b) => {
            let name = if *b { "true" } else { "false" };
            match op {
                CmpOp::Eq => Ok(Constraint::Cat(CatSet::only(name))),
                CmpOp::Ne => Ok(Constraint::Cat(CatSet::except(name))),
                _ => Err(EvaError::Plan(
                    "unsupported boolean comparison in symbolic analysis".into(),
                )),
            }
        }
        other => Err(EvaError::Plan(format!(
            "unsupported literal {other} in symbolic analysis"
        ))),
    }
}

/// Convert a predicate to DNF. Errors on constructs outside the supported
/// grammar (column-to-column comparisons, IS NULL, aggregates); callers fall
/// back to "no symbolic analysis" — reuse still works through the runtime
/// NULL guard, just without cost-model help.
pub fn to_dnf(expr: &Expr) -> Result<Dnf> {
    to_dnf_inner(expr, false)
}

fn to_dnf_inner(expr: &Expr, negated: bool) -> Result<Dnf> {
    match expr {
        Expr::Literal(Value::Bool(b)) => {
            if *b != negated {
                Ok(Dnf::true_())
            } else {
                Ok(Dnf::false_())
            }
        }
        Expr::Not(inner) => to_dnf_inner(inner, !negated),
        Expr::And(a, b) => {
            let (da, db) = (to_dnf_inner(a, negated)?, to_dnf_inner(b, negated)?);
            Ok(if negated { da.or(&db) } else { da.and(&db) })
        }
        Expr::Or(a, b) => {
            let (da, db) = (to_dnf_inner(a, negated)?, to_dnf_inner(b, negated)?);
            Ok(if negated { da.and(&db) } else { da.or(&db) })
        }
        Expr::Cmp { op, lhs, rhs } => {
            let op = if negated { op.negated() } else { *op };
            // Normalize to `dim op literal`.
            let (dim, op, lit) = match (dim_of(lhs), &**rhs) {
                (Some(d), Expr::Literal(v)) => (d, op, v),
                _ => match (dim_of(rhs), &**lhs) {
                    (Some(d), Expr::Literal(v)) => (d, op.flipped(), v),
                    _ => {
                        return Err(EvaError::Plan(format!(
                            "unsupported comparison '{expr}' in symbolic analysis"
                        )))
                    }
                },
            };
            let k = constraint_for(op, lit)?;
            Ok(Dnf::conjunct(Conjunct::universal().constrain(&dim, k)))
        }
        other => Err(EvaError::Plan(format!(
            "unsupported predicate '{other}' in symbolic analysis"
        ))),
    }
}

/// Render a constraint on `dim_expr` back into an executable predicate.
fn constraint_to_expr(dim_expr: &Expr, k: &Constraint) -> Expr {
    match k {
        Constraint::Num(set) => {
            let mut parts = Vec::new();
            for iv in set.intervals() {
                let mut conj = Vec::new();
                if iv.lo == iv.hi {
                    parts.push(Expr::cmp(dim_expr.clone(), CmpOp::Eq, Expr::lit(iv.lo)));
                    continue;
                }
                if iv.lo != f64::NEG_INFINITY {
                    let op = if iv.lo_open { CmpOp::Gt } else { CmpOp::Ge };
                    conj.push(Expr::cmp(dim_expr.clone(), op, Expr::lit(iv.lo)));
                }
                if iv.hi != f64::INFINITY {
                    let op = if iv.hi_open { CmpOp::Lt } else { CmpOp::Le };
                    conj.push(Expr::cmp(dim_expr.clone(), op, Expr::lit(iv.hi)));
                }
                parts.push(eva_expr::conjoin(conj));
            }
            eva_expr::disjoin(parts)
        }
        Constraint::Cat(set) => match set {
            CatSet::In(vals) => eva_expr::disjoin(
                vals.iter()
                    .map(|v| Expr::cmp(dim_expr.clone(), CmpOp::Eq, Expr::lit(v.as_str())))
                    .collect(),
            ),
            CatSet::NotIn(vals) => eva_expr::conjoin(
                vals.iter()
                    .map(|v| Expr::cmp(dim_expr.clone(), CmpOp::Ne, Expr::lit(v.as_str())))
                    .collect(),
            ),
        },
    }
}

/// Convert a DNF back into an executable [`Expr`]. `resolve` maps each
/// dimension name to the expression that reads it at run time (usually a
/// plain column; UDF-output dims map to the view's output column).
pub fn dnf_to_expr<F: Fn(&str) -> Expr>(dnf: &Dnf, resolve: F) -> Expr {
    if dnf.is_false() {
        return Expr::false_();
    }
    if dnf.is_true() {
        return Expr::true_();
    }
    let mut disjuncts = Vec::with_capacity(dnf.conjuncts().len());
    for c in dnf.conjuncts() {
        let mut parts = Vec::with_capacity(c.dims().len());
        for (dim, k) in c.dims() {
            parts.push(constraint_to_expr(&resolve(dim), k));
        }
        disjuncts.push(eva_expr::conjoin(parts));
    }
    eva_expr::disjoin(disjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::{DataType, Field, Row, Schema};
    use eva_expr::eval::NoUdfs;
    use eva_expr::RowContext;
    use std::collections::BTreeMap;

    fn round_trip_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("area", DataType::Float),
            Field::new("label", DataType::Str),
        ])
        .unwrap()
    }

    fn eval_expr(e: &Expr, row: &Row, schema: &Schema) -> bool {
        let ctx = RowContext::new(schema, row, &NoUdfs);
        e.eval_predicate(&ctx).unwrap()
    }

    fn point(id: i64, area: f64, label: &str) -> BTreeMap<String, Value> {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Value::Int(id));
        m.insert("area".to_string(), Value::Float(area));
        m.insert("label".to_string(), Value::from(label));
        m
    }

    #[test]
    fn simple_conjunction() {
        let e = Expr::col("id")
            .lt(10_000)
            .and(Expr::col("label").eq_val("car"))
            .and(Expr::col("area").gt(0.3));
        let d = to_dnf(&e).unwrap();
        assert_eq!(d.conjuncts().len(), 1);
        assert!(d.contains_point(&point(5, 0.4, "car")));
        assert!(!d.contains_point(&point(5, 0.2, "car")));
        assert!(!d.contains_point(&point(5, 0.4, "bus")));
        assert!(!d.contains_point(&point(20_000, 0.4, "car")));
    }

    #[test]
    fn negation_pushes_to_atoms() {
        let e = Expr::col("id")
            .lt(10)
            .and(Expr::col("label").eq_val("car"))
            .not();
        let d = to_dnf(&e).unwrap();
        // ¬(id<10 ∧ label=car) = id>=10 ∨ label≠car
        assert!(d.contains_point(&point(20, 0.0, "car")));
        assert!(d.contains_point(&point(5, 0.0, "bus")));
        assert!(!d.contains_point(&point(5, 0.0, "car")));
    }

    #[test]
    fn flipped_comparisons_normalize() {
        // 10 > id  ≡  id < 10
        let e = Expr::cmp(Expr::lit(10i64), CmpOp::Gt, Expr::col("id"));
        let d = to_dnf(&e).unwrap();
        assert!(d.contains_point(&point(5, 0.0, "x")));
        assert!(!d.contains_point(&point(15, 0.0, "x")));
    }

    #[test]
    fn udf_calls_become_dims() {
        let call = UdfCall::new("CarType", vec![Expr::col("frame"), Expr::col("bbox")]);
        let e = Expr::cmp(Expr::Udf(call.clone()), CmpOp::Eq, Expr::lit("Nissan"));
        let d = to_dnf(&e).unwrap();
        let dims: Vec<String> = d.dims().into_iter().collect();
        assert_eq!(dims, vec!["cartype(bbox,frame)".to_string()]); // args sorted
                                                                   // Accuracy does not change the dimension.
        let with_acc = UdfCall::new("CarType", vec![Expr::col("frame"), Expr::col("bbox")])
            .with_accuracy("HIGH");
        assert_eq!(udf_dim(&call), udf_dim(&with_acc));
    }

    #[test]
    fn unsupported_shapes_error() {
        // column-to-column comparison
        let e = Expr::cmp(Expr::col("a"), CmpOp::Eq, Expr::col("b"));
        assert!(to_dnf(&e).is_err());
        // string inequality
        let e = Expr::cmp(Expr::col("label"), CmpOp::Lt, Expr::lit("car"));
        assert!(to_dnf(&e).is_err());
        // IS NULL
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("a")),
            negated: false,
        };
        assert!(to_dnf(&e).is_err());
    }

    #[test]
    fn literal_true_false() {
        assert!(to_dnf(&Expr::true_()).unwrap().is_true());
        assert!(to_dnf(&Expr::false_()).unwrap().is_false());
        assert!(to_dnf(&Expr::true_().not()).unwrap().is_false());
    }

    #[test]
    fn dnf_to_expr_round_trip_semantics() {
        let schema = round_trip_schema();
        let e = Expr::col("id")
            .ge(100)
            .and(Expr::col("id").lt(200))
            .and(Expr::col("label").eq_val("car"))
            .or(Expr::col("area").gt(0.5));
        let d = to_dnf(&e).unwrap();
        let back = dnf_to_expr(&d, |d| Expr::col(d));
        for (id, area, label) in [
            (150i64, 0.1, "car"),
            (150, 0.1, "bus"),
            (250, 0.9, "bus"),
            (250, 0.2, "car"),
            (100, 0.5, "car"),
        ] {
            let row: Row = vec![Value::Int(id), Value::Float(area), Value::from(label)];
            assert_eq!(
                eval_expr(&e, &row, &schema),
                eval_expr(&back, &row, &schema),
                "row ({id},{area},{label})"
            );
        }
    }

    #[test]
    fn dnf_to_expr_handles_not_equal_and_points() {
        let schema = round_trip_schema();
        let e = Expr::col("id")
            .ne_val(7)
            .and(Expr::col("label").ne_val("bus"));
        let d = to_dnf(&e).unwrap();
        let back = dnf_to_expr(&d, |d| Expr::col(d));
        for (id, label) in [(7i64, "car"), (8, "bus"), (8, "car"), (7, "bus")] {
            let row: Row = vec![Value::Int(id), Value::Float(0.0), Value::from(label)];
            assert_eq!(
                eval_expr(&e, &row, &schema),
                eval_expr(&back, &row, &schema),
                "row ({id},{label})"
            );
        }
        // Point equality round trip.
        let e = Expr::col("id").eq_val(5);
        let back = dnf_to_expr(&to_dnf(&e).unwrap(), |d| Expr::col(d));
        let row: Row = vec![Value::Int(5), Value::Float(0.0), Value::from("x")];
        assert!(eval_expr(&back, &row, &schema));
    }

    #[test]
    fn dnf_to_expr_of_true_false() {
        assert!(dnf_to_expr(&Dnf::true_(), |d| Expr::col(d)).is_true_lit());
        assert!(dnf_to_expr(&Dnf::false_(), |d| Expr::col(d)).is_false_lit());
    }
}
