//! Binary codec for symbolic predicates.
//!
//! The UDF manager persists each signature's aggregated predicate `p_u`
//! alongside the view store; this module gives [`Dnf`] a deterministic,
//! validated byte encoding on top of [`eva_common::codec`]. Decoding
//! re-normalizes through the public constructors ([`IntervalSet::from_intervals`],
//! [`Conjunct::from_dims`], [`Dnf::from_conjuncts`]), so even a byte stream
//! that decodes structurally cannot smuggle in a predicate violating the
//! crate's invariants.

use std::collections::BTreeSet;

use eva_common::codec::{ByteReader, ByteWriter};
use eva_common::{EvaError, Result};

use crate::catset::CatSet;
use crate::conjunct::{Conjunct, Constraint};
use crate::dnf::Dnf;
use crate::interval::{Interval, IntervalSet};

fn write_interval(w: &mut ByteWriter, iv: &Interval) {
    w.f64(iv.lo);
    w.bool(iv.lo_open);
    w.f64(iv.hi);
    w.bool(iv.hi_open);
}

fn read_interval(r: &mut ByteReader) -> Result<Interval> {
    let lo = r.f64()?;
    let lo_open = r.bool()?;
    let hi = r.f64()?;
    let hi_open = r.bool()?;
    Interval::new(lo, lo_open, hi, hi_open).ok_or_else(|| {
        EvaError::Corrupt(format!(
            "persisted interval is empty or NaN: lo={lo} hi={hi}"
        ))
    })
}

fn write_catset(w: &mut ByteWriter, cs: &CatSet) {
    let (tag, values) = match cs {
        CatSet::In(vs) => (0u8, vs),
        CatSet::NotIn(vs) => (1u8, vs),
    };
    w.u8(tag);
    w.count(values.len());
    for v in values {
        w.str(v);
    }
}

fn read_catset(r: &mut ByteReader) -> Result<CatSet> {
    let tag = r.u8()?;
    let n = r.count()?;
    let mut values = BTreeSet::new();
    for _ in 0..n {
        values.insert(r.str()?);
    }
    match tag {
        0 => Ok(CatSet::In(values)),
        1 => Ok(CatSet::NotIn(values)),
        t => Err(EvaError::Corrupt(format!("unknown catset tag {t:#x}"))),
    }
}

fn write_constraint(w: &mut ByteWriter, c: &Constraint) {
    match c {
        Constraint::Num(set) => {
            w.u8(0);
            w.count(set.intervals().len());
            for iv in set.intervals() {
                write_interval(w, iv);
            }
        }
        Constraint::Cat(cs) => {
            w.u8(1);
            write_catset(w, cs);
        }
    }
}

fn read_constraint(r: &mut ByteReader) -> Result<Constraint> {
    match r.u8()? {
        0 => {
            let n = r.count()?;
            let mut intervals = Vec::with_capacity(n);
            for _ in 0..n {
                intervals.push(read_interval(r)?);
            }
            Ok(Constraint::Num(IntervalSet::from_intervals(intervals)))
        }
        1 => Ok(Constraint::Cat(read_catset(r)?)),
        t => Err(EvaError::Corrupt(format!("unknown constraint tag {t:#x}"))),
    }
}

fn write_conjunct(w: &mut ByteWriter, c: &Conjunct) {
    w.bool(c.is_unsat());
    if c.is_unsat() {
        return;
    }
    w.count(c.dims().len());
    for (dim, constraint) in c.dims() {
        w.str(dim);
        write_constraint(w, constraint);
    }
}

fn read_conjunct(r: &mut ByteReader) -> Result<Conjunct> {
    if r.bool()? {
        return Ok(Conjunct::unsat());
    }
    let n = r.count()?;
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        let dim = r.str()?;
        dims.push((dim, read_constraint(r)?));
    }
    Ok(Conjunct::from_dims(dims))
}

/// Encode a [`Dnf`] (count-prefixed conjuncts).
pub fn write_dnf(w: &mut ByteWriter, dnf: &Dnf) {
    w.count(dnf.conjuncts().len());
    for c in dnf.conjuncts() {
        write_conjunct(w, c);
    }
}

/// Decode a [`Dnf`] written by [`write_dnf`], re-normalizing on the way in.
pub fn read_dnf(r: &mut ByteReader) -> Result<Dnf> {
    let n = r.count()?;
    let mut conjuncts = Vec::with_capacity(n);
    for _ in 0..n {
        conjuncts.push(read_conjunct(r)?);
    }
    Ok(Dnf::from_conjuncts(conjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_dnf;
    use eva_expr::Expr;

    fn round_trip(dnf: &Dnf) -> Dnf {
        let mut w = ByteWriter::new();
        write_dnf(&mut w, dnf);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_dnf(&mut r).unwrap();
        r.expect_end().unwrap();
        back
    }

    #[test]
    fn false_round_trips() {
        assert_eq!(round_trip(&Dnf::false_()), Dnf::false_());
    }

    #[test]
    fn numeric_and_categorical_round_trip() {
        let e = Expr::col("id")
            .ge(10.0)
            .and(Expr::col("id").lt(500.0))
            .and(Expr::col("label").eq_val("car"))
            .or(Expr::col("label")
                .eq_val("bus")
                .and(Expr::col("id").lt(100.0)));
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(round_trip(&dnf), dnf);
    }

    #[test]
    fn unbounded_intervals_round_trip() {
        let e = Expr::col("score").ge(0.25);
        let dnf = to_dnf(&e).unwrap();
        // One side of the interval is +∞ — must survive the codec exactly.
        assert_eq!(round_trip(&dnf), dnf);
    }

    #[test]
    fn negated_category_round_trips() {
        let e = Expr::col("label").eq_val("car").not();
        let dnf = to_dnf(&e).unwrap();
        assert_eq!(round_trip(&dnf), dnf);
    }

    #[test]
    fn truncated_bytes_are_corrupt() {
        let e = Expr::col("id")
            .lt(100.0)
            .and(Expr::col("label").eq_val("car"));
        let dnf = to_dnf(&e).unwrap();
        let mut w = ByteWriter::new();
        write_dnf(&mut w, &dnf);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            match read_dnf(&mut r) {
                Ok(_) => assert!(
                    r.expect_end().is_err() || cut == bytes.len(),
                    "cut {cut} silently decoded"
                ),
                Err(e) => assert_eq!(e.stage(), "corrupt", "cut {cut}"),
            }
        }
    }

    #[test]
    fn corrupt_interval_rejected() {
        let mut w = ByteWriter::new();
        w.count(1); // one conjunct
        w.bool(false); // not unsat
        w.count(1); // one dim
        w.str("id");
        w.u8(0); // Num
        w.count(1); // one interval
        w.f64(f64::NAN);
        w.bool(false);
        w.f64(1.0);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_dnf(&mut r).unwrap_err().stage(), "corrupt");
    }
}
