//! Categorical constraint sets.
//!
//! String-valued dimensions (`label`, `VehicleColor(...)`, `CarType(...)`)
//! take values from an unbounded domain, so a constraint is either a finite
//! *include* set (`label = 'car'`, `color IN ('red','gray')`) or a cofinite
//! *exclude* set (`label != 'car'`). Both are closed under union,
//! intersection and complement, which keeps the symbolic algebra exact.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A set of category values: finite (`In`) or cofinite (`NotIn`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CatSet {
    /// Exactly these values.
    In(BTreeSet<String>),
    /// Every value except these. `NotIn(∅)` is the full domain.
    NotIn(BTreeSet<String>),
}

impl CatSet {
    /// The empty set.
    pub fn empty() -> CatSet {
        CatSet::In(BTreeSet::new())
    }

    /// The full domain.
    pub fn full() -> CatSet {
        CatSet::NotIn(BTreeSet::new())
    }

    /// `{v}`.
    pub fn only(v: impl Into<String>) -> CatSet {
        let mut s = BTreeSet::new();
        s.insert(v.into());
        CatSet::In(s)
    }

    /// Everything except `{v}`.
    pub fn except(v: impl Into<String>) -> CatSet {
        let mut s = BTreeSet::new();
        s.insert(v.into());
        CatSet::NotIn(s)
    }

    /// Finite include set from values.
    pub fn of<I: IntoIterator<Item = S>, S: Into<String>>(vals: I) -> CatSet {
        CatSet::In(vals.into_iter().map(Into::into).collect())
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        matches!(self, CatSet::In(s) if s.is_empty())
    }

    /// Is the set the full domain?
    pub fn is_full(&self) -> bool {
        matches!(self, CatSet::NotIn(s) if s.is_empty())
    }

    /// Membership test.
    pub fn contains(&self, v: &str) -> bool {
        match self {
            CatSet::In(s) => s.contains(v),
            CatSet::NotIn(s) => !s.contains(v),
        }
    }

    /// Set complement.
    pub fn complement(&self) -> CatSet {
        match self {
            CatSet::In(s) => CatSet::NotIn(s.clone()),
            CatSet::NotIn(s) => CatSet::In(s.clone()),
        }
    }

    /// Set union.
    pub fn union(&self, other: &CatSet) -> CatSet {
        match (self, other) {
            (CatSet::In(a), CatSet::In(b)) => CatSet::In(a.union(b).cloned().collect()),
            (CatSet::NotIn(a), CatSet::NotIn(b)) => {
                CatSet::NotIn(a.intersection(b).cloned().collect())
            }
            (CatSet::In(inc), CatSet::NotIn(exc)) | (CatSet::NotIn(exc), CatSet::In(inc)) => {
                // NotIn(exc) ∪ In(inc) = NotIn(exc \ inc)
                CatSet::NotIn(exc.difference(inc).cloned().collect())
            }
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CatSet) -> CatSet {
        match (self, other) {
            (CatSet::In(a), CatSet::In(b)) => CatSet::In(a.intersection(b).cloned().collect()),
            (CatSet::NotIn(a), CatSet::NotIn(b)) => CatSet::NotIn(a.union(b).cloned().collect()),
            (CatSet::In(inc), CatSet::NotIn(exc)) | (CatSet::NotIn(exc), CatSet::In(inc)) => {
                CatSet::In(inc.difference(exc).cloned().collect())
            }
        }
    }

    /// `self \ other`.
    pub fn difference(&self, other: &CatSet) -> CatSet {
        self.intersect(&other.complement())
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &CatSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Number of atomic equality/inequality formulas needed to express the
    /// set (`In{a,b}` → 2 equalities; `NotIn{a}` → 1 inequality; full → 0).
    pub fn atom_count(&self) -> usize {
        match self {
            CatSet::In(s) => s.len(),
            CatSet::NotIn(s) => s.len(),
        }
    }
}

impl fmt::Display for CatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (neg, s) = match self {
            CatSet::In(s) => ("", s),
            CatSet::NotIn(s) => ("¬", s),
        };
        write!(f, "{neg}{{")?;
        for (i, v) in s.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let s = CatSet::of(["car", "truck"]);
        assert!(s.contains("car"));
        assert!(!s.contains("bus"));
        let n = CatSet::except("car");
        assert!(!n.contains("car"));
        assert!(n.contains("bus"));
    }

    #[test]
    fn union_all_cases() {
        let a = CatSet::of(["car"]);
        let b = CatSet::of(["truck"]);
        assert_eq!(a.union(&b), CatSet::of(["car", "truck"]));

        let na = CatSet::NotIn(["car", "bus"].iter().map(|s| s.to_string()).collect());
        let nb = CatSet::NotIn(["car", "truck"].iter().map(|s| s.to_string()).collect());
        // complement sets intersect: NotIn({car})
        assert_eq!(na.union(&nb), CatSet::except("car"));

        // NotIn{car,bus} ∪ In{car} = NotIn{bus}
        assert_eq!(na.union(&a), CatSet::except("bus"));
    }

    #[test]
    fn intersect_all_cases() {
        let a = CatSet::of(["car", "bus"]);
        let b = CatSet::of(["car", "truck"]);
        assert_eq!(a.intersect(&b), CatSet::only("car"));

        let na = CatSet::except("car");
        assert_eq!(a.intersect(&na), CatSet::only("bus"));

        let nb = CatSet::except("bus");
        assert_eq!(
            na.intersect(&nb),
            CatSet::NotIn(["car", "bus"].iter().map(|s| s.to_string()).collect())
        );
    }

    #[test]
    fn complement_involution() {
        let a = CatSet::of(["car"]);
        assert_eq!(a.complement().complement(), a);
        assert!(CatSet::full().complement().is_empty());
        assert!(CatSet::empty().complement().is_full());
    }

    #[test]
    fn subset_checks() {
        assert!(CatSet::only("car").is_subset(&CatSet::of(["car", "bus"])));
        assert!(!CatSet::of(["car", "bus"]).is_subset(&CatSet::only("car")));
        assert!(CatSet::only("car").is_subset(&CatSet::full()));
        assert!(CatSet::empty().is_subset(&CatSet::only("car")));
        assert!(CatSet::except("x").is_subset(&CatSet::full()));
        assert!(!CatSet::except("x").is_subset(&CatSet::of(["a", "b"])));
    }

    #[test]
    fn atom_counts() {
        assert_eq!(CatSet::full().atom_count(), 0);
        assert_eq!(CatSet::only("a").atom_count(), 1);
        assert_eq!(CatSet::of(["a", "b"]).atom_count(), 2);
        assert_eq!(CatSet::except("a").atom_count(), 1);
    }

    #[test]
    fn demorgan_laws() {
        let a = CatSet::of(["x", "y"]);
        let b = CatSet::except("y");
        assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
        assert_eq!(
            a.intersect(&b).complement(),
            a.complement().union(&b.complement())
        );
    }
}
