//! Interval sets over the reals — the numeric workhorse of the symbolic
//! engine.
//!
//! Every numeric atom of the paper's predicate grammar (`id < 10000`,
//! `area >= 0.3`, `x != 5`…) denotes a union of open/closed intervals. An
//! [`IntervalSet`] is the canonical form: a sorted vector of disjoint,
//! non-adjacent intervals. Union / intersection / complement / subset are
//! exact, which is what lets EVA *prove* reuse coverage (`p₋ = FALSE`)
//! soundly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One contiguous interval with independently open/closed endpoints.
/// `lo = -∞` / `hi = +∞` encode unbounded sides (the open flags of infinite
/// endpoints are forced to `true` by normalization).
///
/// Serialized through [`IntervalRepr`]: JSON has no ±∞, so unbounded sides
/// persist as `null`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(into = "IntervalRepr", from = "IntervalRepr")]
pub struct Interval {
    /// Lower endpoint (may be `f64::NEG_INFINITY`).
    pub lo: f64,
    /// Whether the lower endpoint is excluded.
    pub lo_open: bool,
    /// Upper endpoint (may be `f64::INFINITY`).
    pub hi: f64,
    /// Whether the upper endpoint is excluded.
    pub hi_open: bool,
}

impl Interval {
    /// Construct, returning `None` when the interval is empty.
    pub fn new(lo: f64, lo_open: bool, hi: f64, hi_open: bool) -> Option<Interval> {
        let lo_open = lo_open || lo == f64::NEG_INFINITY;
        let hi_open = hi_open || hi == f64::INFINITY;
        if lo.is_nan() || hi.is_nan() {
            return None;
        }
        if lo > hi || (lo == hi && (lo_open || hi_open)) {
            return None;
        }
        Some(Interval {
            lo,
            lo_open,
            hi,
            hi_open,
        })
    }

    /// The whole real line.
    pub fn full() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            lo_open: true,
            hi: f64::INFINITY,
            hi_open: true,
        }
    }

    /// Single point `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval {
            lo: v,
            lo_open: false,
            hi: v,
            hi_open: false,
        }
    }

    /// Does the interval contain the point?
    pub fn contains(&self, v: f64) -> bool {
        let above_lo = v > self.lo || (v == self.lo && !self.lo_open);
        let below_hi = v < self.hi || (v == self.hi && !self.hi_open);
        above_lo && below_hi
    }

    /// Intersection (None when empty).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let (lo, lo_open) = if self.lo > other.lo {
            (self.lo, self.lo_open)
        } else if other.lo > self.lo {
            (other.lo, other.lo_open)
        } else {
            (self.lo, self.lo_open || other.lo_open)
        };
        let (hi, hi_open) = if self.hi < other.hi {
            (self.hi, self.hi_open)
        } else if other.hi < self.hi {
            (other.hi, other.hi_open)
        } else {
            (self.hi, self.hi_open || other.hi_open)
        };
        Interval::new(lo, lo_open, hi, hi_open)
    }

    /// Do the intervals overlap or touch such that their union is a single
    /// interval? (`[1,2]` and `(2,3]` touch; `(1,2)` and `(2,3)` do not.)
    fn merges_with(&self, other: &Interval) -> bool {
        // Order so self.lo <= other.lo.
        let (a, b) = if (self.lo, self.lo_open as u8) <= (other.lo, other.lo_open as u8) {
            (self, other)
        } else {
            (other, self)
        };
        if b.lo < a.hi {
            return true;
        }
        if b.lo == a.hi {
            // Touching endpoints merge unless both are open (missing point).
            return !(a.hi_open && b.lo_open);
        }
        false
    }

    /// How many atomic comparison formulas this interval costs to express:
    /// `(-∞,∞)`→0, half-bounded→1, point→1, bounded→2.
    pub fn atom_count(&self) -> usize {
        let lo_finite = self.lo != f64::NEG_INFINITY;
        let hi_finite = self.hi != f64::INFINITY;
        match (lo_finite, hi_finite) {
            (false, false) => 0,
            (true, true) if self.lo == self.hi => 1, // x = c
            (a, b) => a as usize + b as usize,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lo_b = if self.lo_open { '(' } else { '[' };
        let hi_b = if self.hi_open { ')' } else { ']' };
        write!(f, "{lo_b}{}, {}{hi_b}", self.lo, self.hi)
    }
}

/// JSON-safe encoding of an [`Interval`] (`None` = unbounded side).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IntervalRepr {
    lo: Option<f64>,
    lo_open: bool,
    hi: Option<f64>,
    hi_open: bool,
}

impl From<Interval> for IntervalRepr {
    fn from(i: Interval) -> IntervalRepr {
        IntervalRepr {
            lo: i.lo.is_finite().then_some(i.lo),
            lo_open: i.lo_open,
            hi: i.hi.is_finite().then_some(i.hi),
            hi_open: i.hi_open,
        }
    }
}

impl From<IntervalRepr> for Interval {
    fn from(r: IntervalRepr) -> Interval {
        Interval {
            lo: r.lo.unwrap_or(f64::NEG_INFINITY),
            lo_open: r.lo_open || r.lo.is_none(),
            hi: r.hi.unwrap_or(f64::INFINITY),
            hi_open: r.hi_open || r.hi.is_none(),
        }
    }
}

/// A canonical union of disjoint, non-adjacent intervals, sorted ascending.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet::default()
    }

    /// The whole real line.
    pub fn full() -> IntervalSet {
        IntervalSet {
            intervals: vec![Interval::full()],
        }
    }

    /// A set with one interval (empty if the interval is empty).
    pub fn interval(lo: f64, lo_open: bool, hi: f64, hi_open: bool) -> IntervalSet {
        match Interval::new(lo, lo_open, hi, hi_open) {
            Some(i) => IntervalSet { intervals: vec![i] },
            None => IntervalSet::empty(),
        }
    }

    /// `{v}`.
    pub fn point(v: f64) -> IntervalSet {
        IntervalSet {
            intervals: vec![Interval::point(v)],
        }
    }

    /// `(-∞, v)` or `(-∞, v]`.
    pub fn less_than(v: f64, inclusive: bool) -> IntervalSet {
        IntervalSet::interval(f64::NEG_INFINITY, true, v, !inclusive)
    }

    /// `(v, ∞)` or `[v, ∞)`.
    pub fn greater_than(v: f64, inclusive: bool) -> IntervalSet {
        IntervalSet::interval(v, !inclusive, f64::INFINITY, true)
    }

    /// `ℝ \ {v}`.
    pub fn not_equal(v: f64) -> IntervalSet {
        IntervalSet::point(v).complement()
    }

    /// Build from arbitrary intervals, normalizing.
    pub fn from_intervals(intervals: Vec<Interval>) -> IntervalSet {
        let mut s = IntervalSet { intervals };
        s.normalize();
        s
    }

    /// The canonical intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Is this the empty set?
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Is this the whole real line?
    pub fn is_full(&self) -> bool {
        self.intervals.len() == 1
            && self.intervals[0].lo == f64::NEG_INFINITY
            && self.intervals[0].hi == f64::INFINITY
    }

    /// Membership test.
    pub fn contains(&self, v: f64) -> bool {
        // Binary search would work, but sets are tiny (a handful of
        // intervals); linear scan is faster in practice.
        self.intervals.iter().any(|i| i.contains(v))
    }

    fn normalize(&mut self) {
        self.intervals.sort_by(|a, b| {
            (a.lo, a.lo_open as u8)
                .partial_cmp(&(b.lo, b.lo_open as u8))
                .unwrap()
        });
        let mut out: Vec<Interval> = Vec::with_capacity(self.intervals.len());
        for iv in self.intervals.drain(..) {
            match out.last_mut() {
                Some(last) if last.merges_with(&iv) => {
                    // Extend `last` to cover iv.
                    if (iv.hi, !iv.hi_open as u8) > (last.hi, !last.hi_open as u8) {
                        last.hi = iv.hi;
                        last.hi_open = iv.hi_open;
                    }
                    // Lower bound: out is sorted, but equal-lo cases need the
                    // more inclusive (closed) flag.
                    if iv.lo == last.lo && !iv.lo_open {
                        last.lo_open = false;
                    }
                }
                _ => out.push(iv),
            }
        }
        self.intervals = out;
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut intervals = Vec::with_capacity(self.intervals.len() + other.intervals.len());
        intervals.extend_from_slice(&self.intervals);
        intervals.extend_from_slice(&other.intervals);
        IntervalSet::from_intervals(intervals)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if let Some(i) = a.intersect(b) {
                    out.push(i);
                }
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Set complement.
    pub fn complement(&self) -> IntervalSet {
        if self.intervals.is_empty() {
            return IntervalSet::full();
        }
        let mut out = Vec::with_capacity(self.intervals.len() + 1);
        let mut cursor = f64::NEG_INFINITY;
        let mut cursor_open = true; // complement's next lo bound openness
        for iv in &self.intervals {
            if let Some(gap) = Interval::new(cursor, cursor_open, iv.lo, !iv.lo_open) {
                out.push(gap);
            }
            cursor = iv.hi;
            cursor_open = !iv.hi_open;
        }
        if let Some(tail) = Interval::new(cursor, cursor_open, f64::INFINITY, true) {
            out.push(tail);
        }
        IntervalSet::from_intervals(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        self.intersect(&other.complement())
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &IntervalSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Number of atomic comparison formulas needed to express this set.
    pub fn atom_count(&self) -> usize {
        self.intervals.iter().map(Interval::atom_count).sum()
    }

    /// Total measure of the set clipped to `[lo, hi]`, as a fraction of
    /// `hi - lo`. Used by uniform selectivity estimation.
    pub fn measure_within(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return if self.contains(lo) { 1.0 } else { 0.0 };
        }
        let clip = IntervalSet::interval(lo, false, hi, false);
        let clipped = self.intersect(&clip);
        let len: f64 = clipped
            .intervals
            .iter()
            .map(|i| (i.hi.min(hi) - i.lo.max(lo)).max(0.0))
            .sum();
        (len / (hi - lo)).clamp(0.0, 1.0)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_constructions() {
        assert!(Interval::new(5.0, false, 3.0, false).is_none());
        assert!(Interval::new(5.0, true, 5.0, false).is_none());
        assert!(Interval::new(5.0, false, 5.0, false).is_some());
        assert!(Interval::new(f64::NAN, false, 1.0, false).is_none());
    }

    #[test]
    fn contains_respects_openness() {
        let i = Interval::new(1.0, true, 2.0, false).unwrap();
        assert!(!i.contains(1.0));
        assert!(i.contains(1.5));
        assert!(i.contains(2.0));
        assert!(!i.contains(2.1));
    }

    #[test]
    fn union_merges_overlapping() {
        let a = IntervalSet::interval(1.0, false, 3.0, false);
        let b = IntervalSet::interval(2.0, false, 5.0, false);
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 1);
        assert_eq!(u, IntervalSet::interval(1.0, false, 5.0, false));
    }

    #[test]
    fn union_merges_touching_when_point_covered() {
        // [1,2] ∪ (2,3] = [1,3]
        let a = IntervalSet::interval(1.0, false, 2.0, false);
        let b = IntervalSet::interval(2.0, true, 3.0, false);
        assert_eq!(a.union(&b), IntervalSet::interval(1.0, false, 3.0, false));
        // (1,2) ∪ (2,3) stays split (2 missing)
        let a = IntervalSet::interval(1.0, true, 2.0, true);
        let b = IntervalSet::interval(2.0, true, 3.0, true);
        assert_eq!(a.union(&b).intervals().len(), 2);
        // (1,2) ∪ [2,3) = (1,3)
        let b = IntervalSet::interval(2.0, false, 3.0, true);
        assert_eq!(a.union(&b), IntervalSet::interval(1.0, true, 3.0, true));
    }

    #[test]
    fn paper_example_reduction() {
        // UNION(5 < x ∧ x < 15, 10 < x ∧ x < 20) → 5 < x ∧ x < 20
        let a = IntervalSet::interval(5.0, true, 15.0, true);
        let b = IntervalSet::interval(10.0, true, 20.0, true);
        assert_eq!(a.union(&b), IntervalSet::interval(5.0, true, 20.0, true));
        // "timestamp > 6pm OR timestamp > 9pm" → "timestamp > 6pm"
        let p =
            IntervalSet::greater_than(18.0, false).union(&IntervalSet::greater_than(21.0, false));
        assert_eq!(p, IntervalSet::greater_than(18.0, false));
    }

    #[test]
    fn intersection() {
        let a = IntervalSet::less_than(10.0, false);
        let b = IntervalSet::greater_than(5.0, false);
        let i = a.intersect(&b);
        assert_eq!(i, IntervalSet::interval(5.0, true, 10.0, true));
        // (-∞,10) ∩ [10,∞) = ∅, but (-∞,10] ∩ [10,∞) = {10}.
        assert!(a
            .intersect(&IntervalSet::greater_than(10.0, true))
            .is_empty());
        let a_incl = IntervalSet::less_than(10.0, true);
        let pt = a_incl.intersect(&IntervalSet::greater_than(10.0, true));
        assert_eq!(pt, IntervalSet::point(10.0));
    }

    #[test]
    fn complement_round_trip() {
        let a = IntervalSet::interval(1.0, false, 2.0, true)
            .union(&IntervalSet::interval(5.0, true, 7.0, false));
        let c = a.complement();
        assert!(!c.contains(1.0));
        assert!(!c.contains(1.5));
        assert!(c.contains(2.0), "open hi endpoint excluded from a");
        assert!(c.contains(5.0));
        assert!(!c.contains(6.0));
        assert_eq!(c.complement(), a, "double complement is identity");
    }

    #[test]
    fn complement_of_full_and_empty() {
        assert!(IntervalSet::full().complement().is_empty());
        assert!(IntervalSet::empty().complement().is_full());
    }

    #[test]
    fn not_equal_shape() {
        let ne = IntervalSet::not_equal(5.0);
        assert!(!ne.contains(5.0));
        assert!(ne.contains(4.999));
        assert_eq!(ne.intervals().len(), 2);
        assert_eq!(ne.atom_count(), 2);
    }

    #[test]
    fn subset_checks() {
        let small = IntervalSet::interval(2.0, false, 3.0, false);
        let big = IntervalSet::interval(1.0, false, 5.0, false);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(IntervalSet::empty().is_subset(&small));
        assert!(small.is_subset(&IntervalSet::full()));
        // Openness matters: [1,2] ⊄ (1,2].
        let closed = IntervalSet::interval(1.0, false, 2.0, false);
        let half = IntervalSet::interval(1.0, true, 2.0, false);
        assert!(half.is_subset(&closed));
        assert!(!closed.is_subset(&half));
    }

    #[test]
    fn atom_counts() {
        assert_eq!(IntervalSet::full().atom_count(), 0);
        assert_eq!(IntervalSet::less_than(5.0, false).atom_count(), 1);
        assert_eq!(
            IntervalSet::interval(1.0, false, 2.0, false).atom_count(),
            2
        );
        assert_eq!(IntervalSet::point(3.0).atom_count(), 1);
        assert_eq!(IntervalSet::empty().atom_count(), 0);
    }

    #[test]
    fn difference() {
        let a = IntervalSet::interval(0.0, false, 10.0, false);
        let b = IntervalSet::interval(3.0, false, 5.0, false);
        let d = a.difference(&b);
        assert!(d.contains(2.0));
        assert!(!d.contains(4.0));
        assert!(d.contains(6.0));
        assert!(!d.contains(3.0));
        assert!(!d.contains(5.0));
        assert_eq!(d.intervals().len(), 2);
    }

    #[test]
    fn measure_within_uniform() {
        let a = IntervalSet::interval(0.0, false, 5.0, false);
        assert!((a.measure_within(0.0, 10.0) - 0.5).abs() < 1e-9);
        assert!((IntervalSet::full().measure_within(0.0, 10.0) - 1.0).abs() < 1e-9);
        assert_eq!(IntervalSet::empty().measure_within(0.0, 10.0), 0.0);
        // Degenerate stats range.
        assert_eq!(a.measure_within(3.0, 3.0), 1.0);
        assert_eq!(a.measure_within(7.0, 7.0), 0.0);
    }

    #[test]
    fn union_with_duplicate_lo_prefers_closed() {
        let a = IntervalSet::interval(1.0, true, 2.0, false);
        let b = IntervalSet::interval(1.0, false, 1.5, false);
        let u = a.union(&b);
        assert!(u.contains(1.0));
        assert_eq!(u.intervals().len(), 1);
    }
}
