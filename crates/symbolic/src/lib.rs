//! # eva-symbolic
//!
//! The SYMBOLIC ENGINE of EVA-RS (paper §4.1) — the component the paper
//! delegates to SymPy, rebuilt natively:
//!
//! * [`interval::IntervalSet`] / [`catset::CatSet`] — exact set algebra for
//!   numeric and categorical dimensions,
//! * [`conjunct::Conjunct`] — N-dimensional product constraints (the
//!   rectangles of Fig. 2),
//! * [`dnf::Dnf`] — predicates in disjunctive normal form, with the paper's
//!   Algorithm 1 ([`dnf::Dnf::reduce`]) and the derived predicates
//!   [`dnf::inter`] / [`dnf::diff`] / [`dnf::union`],
//! * [`convert`] — [`eva_expr::Expr`] ⇄ [`dnf::Dnf`] translation,
//! * [`naive::NaiveDnf`] — the SymPy-`simplify` baseline for Fig. 7,
//! * [`selectivity::StatsCatalog`] — histogram selectivity estimation
//!   feeding the materialization-aware cost model (Eq. 3/4).

pub mod catset;
pub mod codec;
pub mod conjunct;
pub mod convert;
pub mod dnf;
pub mod interval;
pub mod naive;
pub mod selectivity;

pub use catset::CatSet;
pub use conjunct::{Conjunct, Constraint};
pub use convert::{dnf_to_expr, to_dnf, udf_dim};
pub use dnf::{diff, inter, union, Budget, Dnf};
pub use interval::{Interval, IntervalSet};
pub use naive::NaiveDnf;
pub use selectivity::{ColumnStats, StatsCatalog};
