//! Conjunctive predicates over named dimensions.
//!
//! A [`Conjunct`] is the N-dimensional generalization of the rectangles in
//! Fig. 2 of the paper: a map from *dimension* (a column such as `id`, or a
//! UDF-output symbol such as `cartype(frame,bbox)`) to a constraint set on
//! that dimension. Numeric dimensions carry an [`IntervalSet`]; categorical
//! dimensions carry a [`CatSet`]. A conjunct denotes the product of its
//! per-dimension sets; unconstrained dimensions are implicitly full.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use eva_common::Value;

use crate::catset::CatSet;
use crate::interval::IntervalSet;

/// Constraint on a single dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Numeric dimension: a union of intervals.
    Num(IntervalSet),
    /// Categorical dimension: a (co)finite value set.
    Cat(CatSet),
}

impl Constraint {
    /// Is the constraint unsatisfiable?
    pub fn is_empty(&self) -> bool {
        match self {
            Constraint::Num(s) => s.is_empty(),
            Constraint::Cat(s) => s.is_empty(),
        }
    }

    /// Does it admit every value?
    pub fn is_full(&self) -> bool {
        match self {
            Constraint::Num(s) => s.is_full(),
            Constraint::Cat(s) => s.is_full(),
        }
    }

    /// Set union; `None` when the two constraints have mismatched kinds
    /// (which indicates a binder bug — a dimension cannot be both numeric
    /// and categorical).
    pub fn union(&self, other: &Constraint) -> Option<Constraint> {
        match (self, other) {
            (Constraint::Num(a), Constraint::Num(b)) => Some(Constraint::Num(a.union(b))),
            (Constraint::Cat(a), Constraint::Cat(b)) => Some(Constraint::Cat(a.union(b))),
            _ => None,
        }
    }

    /// Set intersection (same kind rules as [`Constraint::union`]).
    pub fn intersect(&self, other: &Constraint) -> Option<Constraint> {
        match (self, other) {
            (Constraint::Num(a), Constraint::Num(b)) => Some(Constraint::Num(a.intersect(b))),
            (Constraint::Cat(a), Constraint::Cat(b)) => Some(Constraint::Cat(a.intersect(b))),
            _ => None,
        }
    }

    /// Set complement.
    pub fn complement(&self) -> Constraint {
        match self {
            Constraint::Num(s) => Constraint::Num(s.complement()),
            Constraint::Cat(s) => Constraint::Cat(s.complement()),
        }
    }

    /// `self \ other` (same-kind only).
    pub fn difference(&self, other: &Constraint) -> Option<Constraint> {
        self.intersect(&other.complement())
    }

    /// Is `self ⊆ other`? Mismatched kinds report `false` (conservative).
    pub fn is_subset(&self, other: &Constraint) -> bool {
        match (self, other) {
            (Constraint::Num(a), Constraint::Num(b)) => a.is_subset(b),
            (Constraint::Cat(a), Constraint::Cat(b)) => a.is_subset(b),
            _ => false,
        }
    }

    /// Membership of a concrete value. Type mismatches report `false`.
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (Constraint::Num(s), Value::Int(i)) => s.contains(*i as f64),
            (Constraint::Num(s), Value::Float(f)) => s.contains(*f),
            (Constraint::Cat(s), Value::Str(x)) => s.contains(x),
            (Constraint::Cat(s), Value::Bool(b)) => s.contains(if *b { "true" } else { "false" }),
            _ => false,
        }
    }

    /// Atomic formula count.
    pub fn atom_count(&self) -> usize {
        match self {
            Constraint::Num(s) => s.atom_count(),
            Constraint::Cat(s) => s.atom_count(),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Num(s) => write!(f, "{s}"),
            Constraint::Cat(s) => write!(f, "{s}"),
        }
    }
}

/// A satisfiable-or-empty conjunction of per-dimension constraints.
///
/// Invariants (maintained by every constructor):
/// * no stored constraint is full (full ⇒ the dimension is dropped),
/// * `Conjunct::empty()` is the canonical unsatisfiable conjunct, represented
///   by a private flag rather than an arbitrary empty constraint.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Conjunct {
    dims: BTreeMap<String, Constraint>,
    unsat: bool,
}

impl Conjunct {
    /// The universal conjunct (TRUE).
    pub fn universal() -> Conjunct {
        Conjunct::default()
    }

    /// The unsatisfiable conjunct (FALSE).
    pub fn unsat() -> Conjunct {
        Conjunct {
            dims: BTreeMap::new(),
            unsat: true,
        }
    }

    /// Build from dimension constraints, normalizing.
    pub fn from_dims<I: IntoIterator<Item = (String, Constraint)>>(dims: I) -> Conjunct {
        let mut c = Conjunct::universal();
        for (d, k) in dims {
            c = c.constrain(&d, k);
            if c.unsat {
                break;
            }
        }
        c
    }

    /// Intersect one dimension with an additional constraint.
    #[must_use]
    pub fn constrain(mut self, dim: &str, k: Constraint) -> Conjunct {
        if self.unsat {
            return self;
        }
        let merged = match self.dims.get(dim) {
            Some(existing) => match existing.intersect(&k) {
                Some(m) => m,
                // Kind mismatch: treat as unsatisfiable (a dim cannot hold
                // both a number and a string at once).
                None => return Conjunct::unsat(),
            },
            None => k,
        };
        if merged.is_empty() {
            return Conjunct::unsat();
        }
        if merged.is_full() {
            self.dims.remove(dim);
        } else {
            self.dims.insert(dim.to_string(), merged);
        }
        self
    }

    /// Is this the FALSE conjunct?
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    /// Is this the TRUE conjunct?
    pub fn is_universal(&self) -> bool {
        !self.unsat && self.dims.is_empty()
    }

    /// The constrained dimensions.
    pub fn dims(&self) -> &BTreeMap<String, Constraint> {
        &self.dims
    }

    /// Constraint on `dim` (full when unconstrained, empty when unsat).
    pub fn constraint(&self, dim: &str) -> Option<&Constraint> {
        self.dims.get(dim)
    }

    /// Conjunct intersection (product of per-dim intersections).
    pub fn intersect(&self, other: &Conjunct) -> Conjunct {
        if self.unsat || other.unsat {
            return Conjunct::unsat();
        }
        let mut out = self.clone();
        for (d, k) in &other.dims {
            out = out.constrain(d, k.clone());
            if out.unsat {
                return out;
            }
        }
        out
    }

    /// Is `self ⊆ other` (as point sets)? Exact for product sets: every
    /// dimension constrained by `other` must contain `self`'s projection.
    pub fn is_subset(&self, other: &Conjunct) -> bool {
        if self.unsat {
            return true;
        }
        if other.unsat {
            return false;
        }
        other.dims.iter().all(|(d, ok)| match self.dims.get(d) {
            Some(sk) => sk.is_subset(ok),
            None => ok.is_full(), // unconstrained self-projection is ℝ/Σ*
        })
    }

    /// Complement as a disjunction of single-dimension conjuncts
    /// (¬(A∧B) = ¬A ∨ ¬B).
    pub fn complement(&self) -> Vec<Conjunct> {
        if self.unsat {
            return vec![Conjunct::universal()];
        }
        if self.dims.is_empty() {
            return Vec::new(); // ¬TRUE = FALSE
        }
        self.dims
            .iter()
            .map(|(d, k)| Conjunct::universal().constrain(d, k.complement()))
            .filter(|c| !c.is_unsat())
            .collect()
    }

    /// Complement as a *pairwise-disjoint* union (the staircase
    /// decomposition): for dims d₁…dₖ the i-th cell keeps d₁…dᵢ₋₁ inside the
    /// conjunct and negates dᵢ. Larger than [`Conjunct::complement`] but
    /// disjoint, which additive selectivity estimation requires.
    pub fn complement_disjoint(&self) -> Vec<Conjunct> {
        if self.unsat {
            return vec![Conjunct::universal()];
        }
        let mut out = Vec::with_capacity(self.dims.len());
        let mut prefix = Conjunct::universal();
        for (d, k) in &self.dims {
            let cell = prefix.clone().constrain(d, k.complement());
            if !cell.is_unsat() {
                out.push(cell);
            }
            prefix = prefix.constrain(d, k.clone());
        }
        out
    }

    /// Membership of a concrete point (map dim → value). Dimensions missing
    /// from the point are treated as *not satisfying* non-full constraints.
    pub fn contains_point(&self, point: &BTreeMap<String, Value>) -> bool {
        if self.unsat {
            return false;
        }
        self.dims
            .iter()
            .all(|(d, k)| point.get(d).map(|v| k.contains(v)).unwrap_or(false))
    }

    /// Total atomic formulas across dimensions (≥1 for non-universal
    /// conjuncts).
    pub fn atom_count(&self) -> usize {
        if self.unsat {
            return 1; // the literal FALSE
        }
        self.dims.values().map(Constraint::atom_count).sum()
    }

    /// Dimensions where the two conjuncts differ (missing = full).
    pub fn differing_dims(&self, other: &Conjunct) -> Vec<String> {
        let mut out = Vec::new();
        for d in self.dims.keys().chain(other.dims.keys()) {
            if out.iter().any(|x: &String| x == d) {
                continue;
            }
            let a = self.dims.get(d);
            let b = other.dims.get(d);
            let equal = match (a, b) {
                (Some(x), Some(y)) => x == y,
                (None, None) => true,
                _ => false,
            };
            if !equal {
                out.push(d.clone());
            }
        }
        out
    }

    /// Replace one dimension's constraint wholesale (dropping it when full,
    /// collapsing to unsat when empty).
    #[must_use]
    pub fn with_dim(mut self, dim: &str, k: Constraint) -> Conjunct {
        if self.unsat {
            return self;
        }
        if k.is_empty() {
            return Conjunct::unsat();
        }
        if k.is_full() {
            self.dims.remove(dim);
        } else {
            self.dims.insert(dim.to_string(), k);
        }
        self
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unsat {
            return write!(f, "FALSE");
        }
        if self.dims.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, (d, k)) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{d}∈{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(lo: f64, hi: f64) -> Constraint {
        Constraint::Num(IntervalSet::interval(lo, false, hi, false))
    }

    fn cat(v: &str) -> Constraint {
        Constraint::Cat(CatSet::only(v))
    }

    fn point(entries: &[(&str, Value)]) -> BTreeMap<String, Value> {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn constrain_intersects() {
        let c = Conjunct::universal()
            .constrain("id", num(0.0, 100.0))
            .constrain("id", num(50.0, 200.0));
        assert_eq!(c.constraint("id"), Some(&num(50.0, 100.0)));
    }

    #[test]
    fn contradiction_collapses_to_unsat() {
        let c = Conjunct::universal()
            .constrain("label", cat("car"))
            .constrain("label", cat("bus"));
        assert!(c.is_unsat());
        // Kind mismatch also collapses.
        let c = Conjunct::universal()
            .constrain("x", num(0.0, 1.0))
            .constrain("x", cat("a"));
        assert!(c.is_unsat());
    }

    #[test]
    fn full_constraints_are_dropped() {
        let c = Conjunct::universal().constrain("id", Constraint::Num(IntervalSet::full()));
        assert!(c.is_universal());
    }

    #[test]
    fn subset_semantics() {
        let small = Conjunct::universal()
            .constrain("id", num(10.0, 20.0))
            .constrain("label", cat("car"));
        let big = Conjunct::universal().constrain("id", num(0.0, 100.0));
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(Conjunct::unsat().is_subset(&small));
        assert!(small.is_subset(&Conjunct::universal()));
        assert!(!Conjunct::universal().is_subset(&small));
    }

    #[test]
    fn intersect_products() {
        let a = Conjunct::universal().constrain("id", num(0.0, 10.0));
        let b = Conjunct::universal().constrain("label", cat("car"));
        let i = a.intersect(&b);
        assert_eq!(i.dims().len(), 2);
        assert!(!i.is_unsat());
        let disjoint = Conjunct::universal().constrain("id", num(20.0, 30.0));
        assert!(a.intersect(&disjoint).is_unsat());
    }

    #[test]
    fn complement_is_disjunction_of_negated_dims() {
        let c = Conjunct::universal()
            .constrain("id", num(0.0, 10.0))
            .constrain("label", cat("car"));
        let neg = c.complement();
        assert_eq!(neg.len(), 2);
        // A point outside id range satisfies the id-negation conjunct.
        let p = point(&[("id", Value::Float(50.0)), ("label", Value::from("car"))]);
        assert!(neg.iter().any(|n| n.contains_point(&p)));
        assert!(!c.contains_point(&p));
        // A point inside c satisfies no negation conjunct.
        let p = point(&[("id", Value::Float(5.0)), ("label", Value::from("car"))]);
        assert!(!neg.iter().any(|n| n.contains_point(&p)));
    }

    #[test]
    fn complement_of_true_and_false() {
        assert!(Conjunct::universal().complement().is_empty());
        let neg = Conjunct::unsat().complement();
        assert_eq!(neg.len(), 1);
        assert!(neg[0].is_universal());
    }

    #[test]
    fn contains_point_checks_all_dims() {
        let c = Conjunct::universal()
            .constrain("id", num(0.0, 10.0))
            .constrain("label", cat("car"));
        assert!(c.contains_point(&point(&[
            ("id", Value::Int(5)),
            ("label", Value::from("car"))
        ])));
        assert!(!c.contains_point(&point(&[
            ("id", Value::Int(5)),
            ("label", Value::from("bus"))
        ])));
        // Missing dim → not contained.
        assert!(!c.contains_point(&point(&[("id", Value::Int(5))])));
    }

    #[test]
    fn differing_dims() {
        let a = Conjunct::universal()
            .constrain("id", num(0.0, 10.0))
            .constrain("label", cat("car"));
        let b = Conjunct::universal()
            .constrain("id", num(0.0, 10.0))
            .constrain("label", cat("bus"));
        assert_eq!(a.differing_dims(&b), vec!["label".to_string()]);
        let c = Conjunct::universal().constrain("id", num(0.0, 10.0));
        assert_eq!(a.differing_dims(&c), vec!["label".to_string()]);
        assert!(a.differing_dims(&a).is_empty());
    }

    #[test]
    fn atom_count() {
        let c = Conjunct::universal()
            .constrain("id", num(0.0, 10.0)) // 2 atoms
            .constrain("label", cat("car")); // 1 atom
        assert_eq!(c.atom_count(), 3);
        assert_eq!(Conjunct::universal().atom_count(), 0);
        assert_eq!(Conjunct::unsat().atom_count(), 1);
    }

    #[test]
    fn with_dim_replaces() {
        let c = Conjunct::universal().constrain("id", num(0.0, 10.0));
        let c2 = c.clone().with_dim("id", num(5.0, 6.0));
        assert_eq!(c2.constraint("id"), Some(&num(5.0, 6.0)));
        let c3 = c
            .clone()
            .with_dim("id", Constraint::Num(IntervalSet::full()));
        assert!(c3.is_universal());
        let c4 = c.with_dim("id", Constraint::Num(IntervalSet::empty()));
        assert!(c4.is_unsat());
    }
}
