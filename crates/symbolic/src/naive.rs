//! The `simplify` baseline of Fig. 7.
//!
//! The paper compares EVA's reduction algorithm against SymPy's off-the-shelf
//! `simplify`, which is "based on pattern matching and the Quine–McCluskey
//! algorithm" and therefore treats inequalities as *opaque boolean atoms*:
//! it can discharge `p ∨ p`, `p ∧ ¬p`, and absorption `p ∨ (p ∧ q)`, but it
//! cannot see that `x < 5` implies `x < 7`. This module reimplements that
//! behaviour faithfully so the Fig. 7 experiment has its baseline.

use std::collections::BTreeSet;

use eva_expr::{CmpOp, Expr};

/// An opaque atom: a possibly-negated comparison, identified by its printed
/// form after normalizing direction (so `5 > x` and `x < 5` unify — the one
/// piece of pattern matching SymPy does perform).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Atom {
    key: String,
    /// Key of the syntactic complement (same operands, negated operator).
    complement_key: String,
}

fn atom_of(op: CmpOp, lhs: &Expr, rhs: &Expr) -> Atom {
    // Normalize direction: literal goes right when possible.
    let (op, lhs, rhs) = if matches!(lhs, Expr::Literal(_)) && !matches!(rhs, Expr::Literal(_)) {
        (op.flipped(), rhs, lhs)
    } else {
        (op, lhs, rhs)
    };
    Atom {
        key: format!("{lhs} {op} {rhs}"),
        complement_key: format!("{lhs} {} {rhs}", op.negated()),
    }
}

/// A clause: a set of atoms (conjunction).
type Clause = BTreeSet<Atom>;

/// A naive DNF: disjunction of clauses of opaque atoms. `None` clause list is
/// not used; TRUE is the clause list containing the empty clause, FALSE is
/// the empty clause list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NaiveDnf {
    clauses: Vec<Clause>,
}

impl NaiveDnf {
    /// FALSE.
    pub fn false_() -> NaiveDnf {
        NaiveDnf::default()
    }

    /// TRUE.
    pub fn true_() -> NaiveDnf {
        NaiveDnf {
            clauses: vec![Clause::new()],
        }
    }

    /// Parse an expression into naive DNF, pushing negations to atoms.
    pub fn from_expr(e: &Expr) -> NaiveDnf {
        fn go(e: &Expr, neg: bool) -> NaiveDnf {
            match e {
                Expr::Literal(eva_common::Value::Bool(b)) => {
                    if *b != neg {
                        NaiveDnf::true_()
                    } else {
                        NaiveDnf::false_()
                    }
                }
                Expr::Not(inner) => go(inner, !neg),
                Expr::And(a, b) => {
                    if neg {
                        go(a, true).or(&go(b, true))
                    } else {
                        go(a, false).and(&go(b, false))
                    }
                }
                Expr::Or(a, b) => {
                    if neg {
                        go(a, true).and(&go(b, true))
                    } else {
                        go(a, false).or(&go(b, false))
                    }
                }
                Expr::Cmp { op, lhs, rhs } => {
                    let op = if neg { op.negated() } else { *op };
                    let mut clause = Clause::new();
                    clause.insert(atom_of(op, lhs, rhs));
                    NaiveDnf {
                        clauses: vec![clause],
                    }
                }
                // Anything else (UDF truth-valued use, IS NULL…): opaque atom.
                other => {
                    let key = if neg {
                        format!("NOT {other}")
                    } else {
                        format!("{other}")
                    };
                    let complement_key = if neg {
                        format!("{other}")
                    } else {
                        format!("NOT {other}")
                    };
                    let mut clause = Clause::new();
                    clause.insert(Atom {
                        key,
                        complement_key,
                    });
                    NaiveDnf {
                        clauses: vec![clause],
                    }
                }
            }
        }
        let mut d = go(e, false);
        d.simplify();
        d
    }

    /// Disjunction.
    pub fn or(&self, other: &NaiveDnf) -> NaiveDnf {
        let mut clauses = self.clauses.clone();
        clauses.extend(other.clauses.iter().cloned());
        let mut d = NaiveDnf { clauses };
        d.simplify();
        d
    }

    /// Conjunction.
    pub fn and(&self, other: &NaiveDnf) -> NaiveDnf {
        let mut clauses = Vec::with_capacity(self.clauses.len() * other.clauses.len());
        for a in &self.clauses {
            for b in &other.clauses {
                let mut c = a.clone();
                c.extend(b.iter().cloned());
                clauses.push(c);
            }
        }
        let mut d = NaiveDnf { clauses };
        d.simplify();
        d
    }

    /// Negation (De Morgan over opaque atoms): ¬(∨ clauses) = ∧ ¬clauses.
    pub fn negate(&self) -> NaiveDnf {
        let mut acc = NaiveDnf::true_();
        for clause in &self.clauses {
            let negated_atoms: Vec<Clause> = clause
                .iter()
                .map(|a| {
                    let mut c = Clause::new();
                    c.insert(Atom {
                        key: a.complement_key.clone(),
                        complement_key: a.key.clone(),
                    });
                    c
                })
                .collect();
            let neg_clause = NaiveDnf {
                clauses: negated_atoms,
            };
            acc = acc.and(&neg_clause);
        }
        acc
    }

    /// Quine–McCluskey-flavoured boolean simplification over opaque atoms:
    /// contradiction removal (`a ∧ ¬a`), duplicate-clause removal,
    /// absorption (`p ⊇ q` ⇒ drop `p`), and single-atom complement merging
    /// (`a ∨ ¬a → TRUE`).
    fn simplify(&mut self) {
        // Contradictions within a clause.
        self.clauses.retain(|c| {
            !c.iter()
                .any(|a| c.iter().any(|b| b.key == a.complement_key))
        });
        // Absorption + dedup: keep minimal clauses.
        let mut kept: Vec<Clause> = Vec::new();
        self.clauses.sort_by_key(|c| c.len());
        'outer: for c in self.clauses.drain(..) {
            for k in &kept {
                if k.is_subset(&c) {
                    continue 'outer; // absorbed (includes duplicates)
                }
            }
            kept.push(c);
        }
        // a ∨ ¬a → TRUE for single-atom clauses.
        let single_keys: Vec<(String, String)> = kept
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| {
                let a = c.iter().next().unwrap();
                (a.key.clone(), a.complement_key.clone())
            })
            .collect();
        for (k, ck) in &single_keys {
            if single_keys.iter().any(|(k2, _)| k2 == ck) {
                // Tautology: p ∨ ¬p.
                let _ = k;
                kept.clear();
                kept.push(Clause::new());
                break;
            }
        }
        // TRUE clause collapses everything.
        if kept.iter().any(|c| c.is_empty()) {
            kept.clear();
            kept.push(Clause::new());
        }
        self.clauses = kept;
    }

    /// Is FALSE?
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Is TRUE?
    pub fn is_true(&self) -> bool {
        self.clauses.iter().any(|c| c.is_empty())
    }

    /// The Fig. 7 metric: total atoms across clauses.
    pub fn atom_count(&self) -> usize {
        if self.is_false() {
            return 1;
        }
        self.clauses.iter().map(|c| c.len()).sum()
    }
}

/// Derived-predicate operations mirroring §4.1 at the naive level, so Fig. 7
/// can track how the baseline's aggregated predicates grow.
pub mod ops {
    use super::NaiveDnf;

    /// `INTER(p1, p2) = p1 ∧ p2`.
    pub fn inter(p1: &NaiveDnf, p2: &NaiveDnf) -> NaiveDnf {
        p1.and(p2)
    }

    /// `DIFF(p1, p2) = ¬p1 ∧ p2`.
    pub fn diff(p1: &NaiveDnf, p2: &NaiveDnf) -> NaiveDnf {
        p1.negate().and(p2)
    }

    /// `UNION(p1, p2) = p1 ∨ p2`.
    pub fn union(p1: &NaiveDnf, p2: &NaiveDnf) -> NaiveDnf {
        p1.or(p2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotence_and_duplicates() {
        let e = Expr::col("x").lt(5).or(Expr::col("x").lt(5));
        let d = NaiveDnf::from_expr(&e);
        assert_eq!(d.atom_count(), 1);
    }

    #[test]
    fn cannot_merge_different_bounds() {
        // The defining weakness: x<5 ∨ x<7 stays two atoms (EVA reduces to 1).
        let e = Expr::col("x").lt(5).or(Expr::col("x").lt(7));
        let d = NaiveDnf::from_expr(&e);
        assert_eq!(d.atom_count(), 2);
    }

    #[test]
    fn complement_pair_is_tautology() {
        let e = Expr::col("x").lt(5).or(Expr::col("x").ge(5));
        let d = NaiveDnf::from_expr(&e);
        assert!(d.is_true());
        assert_eq!(d.atom_count(), 0);
    }

    #[test]
    fn contradiction_clause_removed() {
        let e = Expr::col("x").lt(5).and(Expr::col("x").ge(5));
        let d = NaiveDnf::from_expr(&e);
        assert!(d.is_false());
    }

    #[test]
    fn absorption() {
        // p ∨ (p ∧ q) → p
        let p = Expr::col("x").lt(5);
        let q = Expr::col("y").gt(1);
        let e = p.clone().or(p.clone().and(q));
        let d = NaiveDnf::from_expr(&e);
        assert_eq!(d.atom_count(), 1);
    }

    #[test]
    fn direction_normalization_unifies() {
        // 5 > x and x < 5 are the same atom.
        let a = Expr::cmp(Expr::lit(5i64), CmpOp::Gt, Expr::col("x"));
        let b = Expr::col("x").lt(5);
        let d = NaiveDnf::from_expr(&a.or(b));
        assert_eq!(d.atom_count(), 1);
    }

    #[test]
    fn negation_de_morgan() {
        let e = Expr::col("x").lt(5).and(Expr::col("y").gt(1));
        let d = NaiveDnf::from_expr(&e);
        let n = d.negate();
        // ¬(a∧b) = ¬a ∨ ¬b: two single-atom clauses.
        assert_eq!(n.clauses.len(), 2);
        assert_eq!(n.atom_count(), 2);
        // Double negation restores atom count (though not necessarily shape).
        assert_eq!(n.negate().atom_count(), d.atom_count());
    }

    #[test]
    fn diff_grows_without_interval_reasoning() {
        // DIFF(x<10, x<20) should be 10<=x<20, 2 atoms for EVA;
        // naive gets x>=10 ∧ x<20 — also 2 atoms here, but repeated unions
        // accumulate: UNION(x<10, x<20) stays 2 atoms instead of 1.
        let p1 = NaiveDnf::from_expr(&Expr::col("x").lt(10));
        let p2 = NaiveDnf::from_expr(&Expr::col("x").lt(20));
        assert_eq!(ops::union(&p1, &p2).atom_count(), 2);
        assert_eq!(ops::diff(&p1, &p2).atom_count(), 2);
        assert_eq!(ops::inter(&p1, &p2).atom_count(), 2);
    }

    #[test]
    fn true_false_atoms() {
        assert_eq!(NaiveDnf::true_().atom_count(), 0);
        assert_eq!(NaiveDnf::false_().atom_count(), 1);
        assert!(NaiveDnf::from_expr(&Expr::true_()).is_true());
        assert!(NaiveDnf::from_expr(&Expr::false_()).is_false());
    }
}
