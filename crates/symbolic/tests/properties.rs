//! Property-based tests for the symbolic engine: every algebraic operation
//! is checked against the point-membership oracle on randomized inputs.

use proptest::prelude::*;
use std::collections::BTreeMap;

use eva_common::Value;
use eva_expr::{CmpOp, Expr};
use eva_symbolic::{diff, inter, to_dnf, union, Budget, CatSet, Dnf, IntervalSet};

// ---------------------------------------------------------------------------
// Interval sets
// ---------------------------------------------------------------------------

fn arb_interval_set() -> impl Strategy<Value = IntervalSet> {
    // Up to 4 raw intervals with small-integer endpoints (collisions likely,
    // which is exactly what stresses open/closed handling).
    prop::collection::vec((-10i32..10, -10i32..10, any::<bool>(), any::<bool>()), 0..4).prop_map(
        |raw| {
            let mut acc = IntervalSet::empty();
            for (a, b, lo_open, hi_open) in raw {
                let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
                acc = acc.union(&IntervalSet::interval(lo, lo_open, hi, hi_open));
            }
            acc
        },
    )
}

/// Sample points covering integer endpoints and midpoints.
fn sample_points() -> Vec<f64> {
    let mut pts = Vec::new();
    for i in -11..=11 {
        pts.push(i as f64);
        pts.push(i as f64 + 0.5);
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interval_union_matches_oracle(a in arb_interval_set(), b in arb_interval_set()) {
        let u = a.union(&b);
        for p in sample_points() {
            prop_assert_eq!(u.contains(p), a.contains(p) || b.contains(p), "point {}", p);
        }
    }

    #[test]
    fn interval_intersect_matches_oracle(a in arb_interval_set(), b in arb_interval_set()) {
        let i = a.intersect(&b);
        for p in sample_points() {
            prop_assert_eq!(i.contains(p), a.contains(p) && b.contains(p), "point {}", p);
        }
    }

    #[test]
    fn interval_complement_matches_oracle(a in arb_interval_set()) {
        let c = a.complement();
        for p in sample_points() {
            prop_assert_eq!(c.contains(p), !a.contains(p), "point {}", p);
        }
        prop_assert_eq!(c.complement(), a.clone(), "double complement");
    }

    #[test]
    fn interval_subset_consistent_with_difference(a in arb_interval_set(), b in arb_interval_set()) {
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
        prop_assert!(a.is_subset(&a));
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn interval_canonical_form_is_minimal(a in arb_interval_set()) {
        // No two stored intervals may merge — otherwise normalization failed.
        let ivs = a.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo, "sorted and non-overlapping");
        }
    }
}

// ---------------------------------------------------------------------------
// Categorical sets
// ---------------------------------------------------------------------------

fn arb_catset() -> impl Strategy<Value = CatSet> {
    let vals = prop::collection::btree_set("[abc]", 0..3);
    (vals, any::<bool>()).prop_map(|(s, neg)| {
        let s: std::collections::BTreeSet<String> = s.into_iter().collect();
        if neg {
            CatSet::NotIn(s)
        } else {
            CatSet::In(s)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn catset_boolean_algebra(a in arb_catset(), b in arb_catset()) {
        for v in ["a", "b", "c", "zzz"] {
            prop_assert_eq!(a.union(&b).contains(v), a.contains(v) || b.contains(v));
            prop_assert_eq!(a.intersect(&b).contains(v), a.contains(v) && b.contains(v));
            prop_assert_eq!(a.complement().contains(v), !a.contains(v));
        }
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
    }
}

// ---------------------------------------------------------------------------
// DNF predicates end-to-end (Expr → Dnf vs three-valued eval)
// ---------------------------------------------------------------------------

fn arb_atom() -> impl Strategy<Value = Expr> {
    let num_dims = prop::sample::select(vec!["x", "y"]);
    let cat_dims = prop::sample::select(vec!["label", "color"]);
    let num_atom = (
        num_dims,
        0i64..20,
        prop::sample::select(vec![
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ]),
    )
        .prop_map(|(d, v, op)| Expr::cmp(Expr::col(d), op, Expr::lit(v)));
    let cat_atom = (
        cat_dims,
        prop::sample::select(vec!["car", "bus", "red"]),
        any::<bool>(),
    )
        .prop_map(|(d, v, ne)| {
            Expr::cmp(
                Expr::col(d),
                if ne { CmpOp::Ne } else { CmpOp::Eq },
                Expr::lit(v),
            )
        });
    prop_oneof![num_atom, cat_atom]
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    arb_atom().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn arb_point() -> impl Strategy<Value = BTreeMap<String, Value>> {
    (
        0i64..20,
        0i64..20,
        prop::sample::select(vec!["car", "bus", "zzz"]),
        prop::sample::select(vec!["red", "car", "blue"]),
    )
        .prop_map(|(x, y, l, c)| {
            let mut m = BTreeMap::new();
            m.insert("x".to_string(), Value::Int(x));
            m.insert("y".to_string(), Value::Int(y));
            m.insert("label".to_string(), Value::from(l));
            m.insert("color".to_string(), Value::from(c));
            m
        })
}

/// Truth of a predicate at a point, evaluated through the Expr engine (the
/// independent oracle for the symbolic conversion).
fn eval_expr_at(e: &Expr, point: &BTreeMap<String, Value>) -> bool {
    use eva_common::{DataType, Field, Schema};
    let schema = Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("y", DataType::Int),
        Field::new("label", DataType::Str),
        Field::new("color", DataType::Str),
    ])
    .unwrap();
    let row: Vec<Value> = ["x", "y", "label", "color"]
        .iter()
        .map(|d| point[*d].clone())
        .collect();
    let ctx = eva_expr::RowContext::new(&schema, &row, &eva_expr::eval::NoUdfs);
    e.eval_predicate(&ctx).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn to_dnf_preserves_semantics(e in arb_predicate(), pts in prop::collection::vec(arb_point(), 8)) {
        let d = to_dnf(&e).unwrap();
        for p in &pts {
            prop_assert_eq!(d.contains_point(p), eval_expr_at(&e, p), "expr {} at {:?}", e, p);
        }
    }

    #[test]
    fn reduce_preserves_semantics(e in arb_predicate(), pts in prop::collection::vec(arb_point(), 8)) {
        let d = to_dnf(&e).unwrap();
        let reduced = d.clone().reduced();
        // Note: atom counts are not monotone per step — case iii of Fig. 2
        // trims overlap, which can *split* an interval while making the
        // conjuncts disjoint. Only semantics preservation is guaranteed.
        for p in &pts {
            prop_assert_eq!(reduced.contains_point(p), d.contains_point(p));
        }
    }

    #[test]
    fn derived_predicates_model_identities(
        e1 in arb_predicate(),
        e2 in arb_predicate(),
        pts in prop::collection::vec(arb_point(), 8),
    ) {
        let p1 = to_dnf(&e1).unwrap();
        let p2 = to_dnf(&e2).unwrap();
        let i = inter(&p1, &p2);
        let d = diff(&p1, &p2);
        let u = union(&p1, &p2);
        for p in &pts {
            let (a, b) = (p1.contains_point(p), p2.contains_point(p));
            prop_assert_eq!(i.contains_point(p), a && b, "INTER at {:?}", p);
            prop_assert_eq!(d.contains_point(p), !a && b, "DIFF at {:?}", p);
            prop_assert_eq!(u.contains_point(p), a || b, "UNION at {:?}", p);
        }
    }

    #[test]
    fn complement_and_subset_agree(e in arb_predicate(), pts in prop::collection::vec(arb_point(), 8)) {
        let p = to_dnf(&e).unwrap();
        let mut budget = Budget::default();
        if let Some(n) = p.complement(&mut budget) {
            for pt in &pts {
                prop_assert_eq!(n.contains_point(pt), !p.contains_point(pt));
            }
            prop_assert!(inter(&p, &n).is_false(), "p ∧ ¬p = ⊥");
        }
        // p ⊆ p ∨ q for any q.
        let q = Dnf::true_();
        prop_assert!(p.is_subset(&q));
    }

    #[test]
    fn disjointed_preserves_and_separates(e in arb_predicate(), pts in prop::collection::vec(arb_point(), 8)) {
        let p = to_dnf(&e).unwrap();
        let mut budget = Budget::default();
        let d = p.disjointed(&mut budget);
        for pt in &pts {
            prop_assert_eq!(d.contains_point(pt), p.contains_point(pt));
            let n = d.conjuncts().iter().filter(|c| c.contains_point(pt)).count();
            if d != p {
                prop_assert!(n <= 1, "{} conjuncts claim {:?}", n, pt);
            }
        }
    }
}
