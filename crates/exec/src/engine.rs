//! Plan building and execution driver.

use std::collections::BTreeMap;
use std::sync::Arc;

use eva_common::{
    Batch, CostBreakdown, EvaError, ExecBatch, MetricsSnapshot, OpId, OpStats, QueryGovernor,
    QueryTrace, Result, Schema, SimClock, SpanKind, SpanRef,
};
use eva_planner::{parallel_segment, ParallelSegment, PhysPlan};
use eva_storage::StorageEngine;
use eva_udf::{InvocationStats, UdfBreaker, UdfRegistry};

use crate::config::ExecConfig;
use crate::context::{ExecCtx, OpStatsCollector};
use crate::funcache::FunCacheTable;
use crate::ops::aggregate::AggregateOp;
use crate::ops::apply::ApplyOp;
use crate::ops::filter::FilterOp;
use crate::ops::parallel::ParallelPipelineOp;
use crate::ops::project::ProjectOp;
use crate::ops::scan::ScanFramesOp;
use crate::ops::sort_limit::{LimitOp, SortOp};
use crate::ops::{into_rows, BoxedOp, Operator, PivotRowsOp};

/// The result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// All result rows in one batch.
    pub batch: Batch,
    /// Simulated-cost delta attributable to this query (per category).
    pub breakdown: CostBreakdown,
    /// Real wall-clock milliseconds spent executing.
    pub wall_ms: f64,
    /// Per-operator runtime statistics, keyed by the plan's operator ids
    /// (feed to [`PhysPlan::explain_analyze`]).
    pub op_stats: BTreeMap<OpId, OpStats>,
    /// Session-metrics delta attributable to this query (probe hits, UDF
    /// calls avoided, …).
    pub metrics: MetricsSnapshot,
    /// The query's span tree and per-kind latency histograms (empty when
    /// the engine's trace sink is disabled).
    pub trace: QueryTrace,
}

impl QueryOutput {
    /// Number of result rows.
    pub fn n_rows(&self) -> usize {
        self.batch.len()
    }

    /// Total simulated seconds.
    pub fn sim_secs(&self) -> f64 {
        self.breakdown.total_secs()
    }
}

/// Wraps every operator built from a plan node, attributing rows, batches
/// and cumulative subtree cost to the node's [`OpId`].
///
/// The clock delta around `inner.next()` includes the charges of every
/// operator *below* this one (they run nested inside the call), so `cum` is
/// the Postgres-style cumulative subtree cost. All accounting happens on the
/// caller thread — the wrapper adds no synchronization and cannot perturb
/// the cost model.
struct InstrumentedOp {
    id: OpId,
    label: &'static str,
    /// Cached trace span, so every `next()` call accumulates into one
    /// [`SpanKind::Operator`] span per plan node (invalidated across
    /// queries by the sink's epoch).
    span: Option<SpanRef>,
    inner: BoxedOp,
}

impl Operator for InstrumentedOp {
    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        let (token, span) =
            ctx.trace()
                .enter(self.span, SpanKind::Operator, self.label, Some(self.id));
        if span.is_some() {
            self.span = span;
        }
        let before = ctx.clock.snapshot();
        let out = self.inner.next(ctx);
        let delta = ctx.clock.snapshot().since(&before);
        let rows = match &out {
            Ok(Some(batch)) => batch.len() as u64,
            _ => 0,
        };
        // Close the span before propagating errors so the scope stack stays
        // balanced even when execution aborts mid-tree.
        ctx.trace().exit(token, delta.total_ms(), rows);
        let out = out?;
        // Columnar-flow accounting happens here — once per planned
        // operator emission, on the caller thread like every other counter.
        if let Some(ExecBatch::Columnar(cb)) = &out {
            ctx.metrics().record_columnar_batch(cb.len() as u64);
        }
        ctx.op_stats.update(self.id, |s| {
            s.cum = s.cum.plus(&delta);
            if let Some(batch) = &out {
                s.rows_out += batch.len() as u64;
                s.batches += 1;
            }
        });
        Ok(out)
    }
}

/// Stable operator name for trace spans (the full describe() line lives in
/// `EXPLAIN`; spans keep the short variant name).
fn op_label(plan: &PhysPlan) -> &'static str {
    match plan {
        PhysPlan::ScanFrames { .. } => "ScanFrames",
        PhysPlan::Filter { .. } => "Filter",
        PhysPlan::Apply { .. } => "Apply",
        PhysPlan::Project { .. } => "Project",
        PhysPlan::Aggregate { .. } => "Aggregate",
        PhysPlan::Sort { .. } => "Sort",
        PhysPlan::Limit { .. } => "Limit",
    }
}

/// Build the operator tree for a physical plan. Every node is wrapped in an
/// [`InstrumentedOp`] carrying the plan node's operator id.
///
/// When an engaged [`ParallelSegment`] is supplied, the subtree rooted at
/// `par.root_op_id` is replaced by a single **unwrapped**
/// [`ParallelPipelineOp`], which replays the subsumed operators' accounting
/// itself (wrapping it would double-count rows and cost).
fn build(plan: &PhysPlan, par: Option<&ParallelSegment>, force_row: bool) -> Result<BoxedOp> {
    if let Some(seg) = par {
        if seg.root_op_id == plan.op_id() {
            return Ok(Box::new(ParallelPipelineOp::new(seg.clone())));
        }
    }
    let inner: BoxedOp = match plan {
        PhysPlan::ScanFrames {
            dataset,
            range,
            schema,
            ..
        } => {
            let scan: BoxedOp = Box::new(ScanFramesOp::new(
                dataset.clone(),
                *range,
                Arc::clone(schema),
            ));
            if force_row {
                // Pivot below the instrumentation shim so the scan node
                // reports row batches, exactly like the pre-columnar engine.
                Box::new(PivotRowsOp::new(scan))
            } else {
                scan
            }
        }
        PhysPlan::Filter {
            input, predicate, ..
        } => Box::new(FilterOp::new(
            build(input, par, force_row)?,
            predicate.clone(),
        )),
        PhysPlan::Apply {
            input,
            spec,
            schema,
            ..
        } => Box::new(
            ApplyOp::new(
                build(input, par, force_row)?,
                spec.clone(),
                Arc::clone(schema),
            )?
            .with_op_id(plan.op_id()),
        ),
        PhysPlan::Project {
            input,
            items,
            schema,
            ..
        } => Box::new(ProjectOp::new(
            build(input, par, force_row)?,
            items.clone(),
            Arc::clone(schema),
        )),
        PhysPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
            ..
        } => Box::new(AggregateOp::new(
            build(input, par, force_row)?,
            group_by.clone(),
            aggs.clone(),
            Arc::clone(schema),
        )),
        PhysPlan::Sort { input, keys, .. } => {
            Box::new(SortOp::new(build(input, par, force_row)?, keys.clone()))
        }
        PhysPlan::Limit { input, n, .. } => {
            Box::new(LimitOp::new(build(input, par, force_row)?, *n))
        }
    };
    Ok(Box::new(InstrumentedOp {
        id: plan.op_id(),
        label: op_label(plan),
        span: None,
        inner,
    }))
}

fn dataset_of(plan: &PhysPlan) -> Result<&str> {
    let mut node = plan;
    loop {
        if let PhysPlan::ScanFrames { dataset, .. } = node {
            return Ok(dataset);
        }
        node = node
            .input()
            .ok_or_else(|| EvaError::Exec("plan has no scan".into()))?;
    }
}

/// Execute a physical plan to completion on the shared worker pool.
#[allow(clippy::too_many_arguments)]
pub fn execute(
    plan: &PhysPlan,
    storage: &StorageEngine,
    registry: &UdfRegistry,
    stats: &InvocationStats,
    clock: &SimClock,
    funcache: &FunCacheTable,
    config: ExecConfig,
) -> Result<QueryOutput> {
    execute_with_pool(
        plan, storage, registry, stats, clock, funcache, config, None,
    )
}

/// [`execute`] with an injected worker pool — tests and scaling benchmarks
/// pin the worker count; `None` uses the process-wide pool.
#[allow(clippy::too_many_arguments)]
pub fn execute_with_pool(
    plan: &PhysPlan,
    storage: &StorageEngine,
    registry: &UdfRegistry,
    stats: &InvocationStats,
    clock: &SimClock,
    funcache: &FunCacheTable,
    config: ExecConfig,
    pool: Option<&crate::pool::WorkerPool>,
) -> Result<QueryOutput> {
    execute_governed(
        plan,
        storage,
        registry,
        stats,
        clock,
        funcache,
        config,
        pool,
        QueryGovernor::ungoverned(),
        None,
    )
}

/// Deterministic estimate of the retained bytes one result row costs the
/// memory accountant. Deliberately crude: the budget verdict must be a pure
/// function of the row count, never of allocator behavior.
pub const RESULT_ROW_BYTES: u64 = 64;

/// [`execute_with_pool`] under a [`QueryGovernor`] and an optional UDF
/// circuit breaker — the session's governed entry point. The governor's
/// token/deadline is checked at every batch boundary of the engine's pull
/// loop (and inside the cooperating operators), and the retained result
/// buffer is charged to the memory accountant; exceeding the budget here has
/// no degradation path, so it cancels with `Cancelled { Budget }`.
#[allow(clippy::too_many_arguments)]
pub fn execute_governed(
    plan: &PhysPlan,
    storage: &StorageEngine,
    registry: &UdfRegistry,
    stats: &InvocationStats,
    clock: &SimClock,
    funcache: &FunCacheTable,
    config: ExecConfig,
    pool: Option<&crate::pool::WorkerPool>,
    governor: QueryGovernor,
    breaker: Option<&UdfBreaker>,
) -> Result<QueryOutput> {
    let started = std::time::Instant::now();
    let before = clock.snapshot();
    let metrics_before = storage.metrics().snapshot();
    // Root the query's span tree at the plan's top operator description.
    let explain = plan.explain();
    storage
        .trace()
        .begin_query(explain.lines().next().unwrap_or("query").trim());
    let dataset = storage.dataset(dataset_of(plan)?)?;
    let op_stats = OpStatsCollector::new();
    // Morsel-driven engagement is deterministic: it depends only on the plan
    // shape, the configured thresholds, and the scan-range size — never on
    // the worker count — so counters and results are machine-independent.
    let segment =
        if !config.force_row_path && config.parallel_scan_min_rows > 0 && config.morsel_rows > 0 {
            parallel_segment(plan).filter(|s| s.range_len() >= config.parallel_scan_min_rows)
        } else {
            None
        };
    let ctx = ExecCtx {
        storage,
        registry,
        stats,
        clock,
        dataset,
        funcache,
        op_stats: &op_stats,
        config,
        pool,
        governor: governor.clone(),
        breaker,
    };
    // Surface the pool width as a gauge (masked from deterministic
    // comparisons) so `\metrics` and snapshots report the parallelism level.
    storage
        .metrics()
        .set_n_workers(ctx.pool().n_workers() as u64);
    let mut root = build(plan, segment.as_ref(), config.force_row_path)?;
    let schema = root.schema();
    let mut out = Batch::empty(schema);
    // The engine's pull loop is the outermost batch boundary: check the
    // governor between batches and charge the retained result buffer. The
    // charge tracks the buffer's high-water row count in a deterministic
    // per-row estimate, so the budget verdict cannot depend on scheduling.
    let budgeted = governor.config().budget_bytes.is_some();
    let mut result_charged = 0u64;
    while let Some(batch) = root.next(&ctx)? {
        governor.check(clock)?;
        out.extend(into_rows(&ctx, batch))?;
        // A degraded query already gave up materialization and bounded its
        // aggregation state; cancelling it at result buffering would turn
        // graceful degradation back into failure, so the charge stops.
        if budgeted && !governor.is_degraded() {
            let want = out.len() as u64 * RESULT_ROW_BYTES;
            if want > result_charged {
                if !governor.charge_bytes(want - result_charged) {
                    return Err(governor.budget_exceeded());
                }
                result_charged = want;
            }
        }
    }
    governor.release_bytes(result_charged);
    let breakdown = clock.snapshot().since(&before);
    let metrics = storage.metrics().snapshot().since(&metrics_before);
    storage
        .trace()
        .end_query(breakdown.total_ms(), out.len() as u64);
    Ok(QueryOutput {
        batch: out,
        breakdown,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        op_stats: op_stats.snapshot(),
        metrics,
        trace: storage.trace().last_query(),
    })
}
