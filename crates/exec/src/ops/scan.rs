//! Frame-range scan.

use std::sync::Arc;

use eva_common::{ExecBatch, Result, Schema};

use crate::context::ExecCtx;
use crate::ops::Operator;

/// Scans `[from, to)` of a dataset in batches, charging frame-read IO.
///
/// Frames are produced directly in columnar form — three contiguous `i64`
/// arrays (id, timestamp, frame-ref) — so the UDF-free pipeline above never
/// materializes per-row `Vec<Value>` tuples.
pub struct ScanFramesOp {
    dataset: String,
    cursor: u64,
    end: u64,
    schema: Arc<Schema>,
}

impl ScanFramesOp {
    /// New scan over the range.
    pub fn new(dataset: String, range: (u64, u64), schema: Arc<Schema>) -> ScanFramesOp {
        ScanFramesOp {
            dataset,
            cursor: range.0,
            end: range.1,
            schema,
        }
    }
}

impl Operator for ScanFramesOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.cursor >= self.end {
            return Ok(None);
        }
        let to = (self.cursor + ctx.config.batch_size as u64).min(self.end);
        let batch = ctx
            .storage
            .scan_frames_columnar(&self.dataset, self.cursor, to, ctx.clock)?;
        self.cursor = to;
        Ok(Some(ExecBatch::Columnar(batch)))
    }
}
