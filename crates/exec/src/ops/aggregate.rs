//! Hash aggregation (GROUP BY).
//!
//! Aggregation is structured around *mergeable partial states*: every input
//! batch folds into a fresh partial [`Groups`] table which is then merged
//! into the running total in batch-arrival order. The serial operator and
//! the morsel-parallel pipeline breaker share this core
//! ([`AggPlan`]/[`AggState::merge`]), and because a parallel pipeline's
//! morsel boundaries reproduce the serial batch boundaries, merging
//! per-morsel partials in morsel order is *bit-identical* to the serial
//! fold — including float accumulation order.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use eva_common::{
    Batch, CellRef, Column, ColumnarBatch, EvaError, ExecBatch, Result, Row, Schema, Value,
};
use eva_expr::eval::NoUdfs;
use eva_expr::vector::eval_columnar;
use eva_expr::{AggFunc, Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// One aggregate's running state.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

/// Numeric view of a cell, with [`Value::as_float`]'s exact error wording.
fn cell_float(c: CellRef<'_>) -> Result<f64> {
    c.as_number()
        .ok_or_else(|| EvaError::Type(format!("expected FLOAT, got {}", c.to_value())))
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match v {
            // COUNT(*): no argument, count the row.
            None => {
                if let AggState::Count(c) = self {
                    *c += 1;
                }
                Ok(())
            }
            Some(val) => self.update_cell(CellRef::from_value(val)),
        }
    }

    /// Update from an argument cell without materializing a [`Value`] —
    /// the vectorized path. NULL arguments are skipped by every function,
    /// matching the row semantics.
    fn update_cell(&mut self, c: CellRef<'_>) -> Result<()> {
        if c.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => *s += cell_float(c)?,
            AggState::Min(m) => {
                let replace = match m {
                    Some(cur) => {
                        c.sql_cmp(CellRef::from_value(cur)) == Some(std::cmp::Ordering::Less)
                    }
                    None => true,
                };
                if replace {
                    *m = Some(c.to_value());
                }
            }
            AggState::Max(m) => {
                let replace = match m {
                    Some(cur) => {
                        c.sql_cmp(CellRef::from_value(cur)) == Some(std::cmp::Ordering::Greater)
                    }
                    None => true,
                };
                if replace {
                    *m = Some(c.to_value());
                }
            }
            AggState::Avg { sum, n } => {
                *sum += cell_float(c)?;
                *n += 1;
            }
        }
        Ok(())
    }

    /// Fold a later partial into this one. Merging is the associative half
    /// of the aggregate algebra; determinism comes from the *caller*
    /// merging partials in batch/morsel order. Min/Max replace only on a
    /// strict inequality, so the earlier partial wins ties exactly like
    /// the sequential fold.
    pub(crate) fn merge(&mut self, later: AggState) {
        match (self, later) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    let replace = match a {
                        Some(cur) => {
                            CellRef::from_value(&v).sql_cmp(CellRef::from_value(cur))
                                == Some(std::cmp::Ordering::Less)
                        }
                        None => true,
                    };
                    if replace {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    let replace = match a {
                        Some(cur) => {
                            CellRef::from_value(&v).sql_cmp(CellRef::from_value(cur))
                                == Some(std::cmp::Ordering::Greater)
                        }
                        None => true,
                    };
                    if replace {
                        *a = Some(v);
                    }
                }
            }
            (AggState::Avg { sum: a, n: an }, AggState::Avg { sum: b, n: bn }) => {
                *a += b;
                *an += bn;
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum(s) => Value::Float(s),
            AggState::Min(m) => m.unwrap_or(Value::Null),
            AggState::Max(m) => m.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// One aggregate's argument, resolved once against the input schema so the
/// per-row loop never re-binds names.
enum ArgPlan {
    /// `COUNT(*)`.
    Star,
    /// A bare input column, read positionally.
    Col(usize),
    /// A general expression.
    Expr(Expr),
}

/// The hash table: key bytes → (key row, per-aggregate states).
pub(crate) type Groups = HashMap<Vec<u8>, (Row, Vec<AggState>)>;

/// A resolved aggregation: group-key positions and argument plans bound
/// against a concrete input schema. Shared by the serial [`AggregateOp`]
/// and the morsel-parallel pipeline breaker — both fold batches into
/// partial [`Groups`] through this and merge partials in arrival order.
/// `Send + Sync`, so workers can fold morsels through a shared `Arc`.
pub(crate) struct AggPlan {
    aggs: Vec<(AggFunc, Option<Expr>, String)>,
    key_idx: Vec<usize>,
    args: Vec<ArgPlan>,
    in_schema: Arc<Schema>,
}

impl AggPlan {
    /// Bind `group_by` names and aggregate arguments against `in_schema`.
    pub(crate) fn resolve(
        group_by: &[String],
        aggs: &[(AggFunc, Option<Expr>, String)],
        in_schema: Arc<Schema>,
    ) -> Result<AggPlan> {
        let key_idx: Vec<usize> = group_by
            .iter()
            .map(|g| {
                in_schema
                    .index_of(g)
                    .ok_or_else(|| EvaError::Exec(format!("unknown group column '{g}'")))
            })
            .collect::<Result<_>>()?;
        // Resolve argument positions once; unresolvable columns stay
        // expressions so the evaluator reports the standard binder error.
        let args: Vec<ArgPlan> = aggs
            .iter()
            .map(|(_, arg, _)| match arg {
                None => ArgPlan::Star,
                Some(Expr::Column(c)) => match in_schema.index_of(c) {
                    Some(i) => ArgPlan::Col(i),
                    None => ArgPlan::Expr(Expr::Column(c.clone())),
                },
                Some(e) => ArgPlan::Expr(e.clone()),
            })
            .collect();
        Ok(AggPlan {
            aggs: aggs.to_vec(),
            key_idx,
            args,
            in_schema,
        })
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.aggs
            .iter()
            .map(|(f, _, _)| AggState::new(*f))
            .collect()
    }

    /// Fold one batch (either form) into `groups`.
    pub(crate) fn consume(&self, batch: &ExecBatch, groups: &mut Groups) -> Result<()> {
        match batch {
            ExecBatch::Columnar(cb) => self.consume_columnar(cb, groups),
            ExecBatch::Rows(b) => self.consume_rows(b, groups),
        }
    }

    fn consume_rows(&self, batch: &Batch, groups: &mut Groups) -> Result<()> {
        for row in batch.rows() {
            let mut key = Vec::new();
            for &i in &self.key_idx {
                row[i].write_bytes(&mut key);
            }
            let entry = groups.entry(key).or_insert_with(|| {
                let key_row: Row = self.key_idx.iter().map(|&i| row[i].clone()).collect();
                (key_row, self.fresh_states())
            });
            for (arg, state) in self.args.iter().zip(entry.1.iter_mut()) {
                match arg {
                    ArgPlan::Star => state.update(None)?,
                    ArgPlan::Col(i) => state.update_cell(CellRef::from_value(&row[*i]))?,
                    ArgPlan::Expr(e) => {
                        let rc = RowContext::new(&self.in_schema, row, &NoUdfs);
                        let v = e.eval(&rc)?;
                        state.update(Some(&v))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Columnar fold: group keys hash each cell's [`Value::write_bytes`]
    /// encoding (identical to the row path, so grouping and output order
    /// cannot diverge) and argument cells update [`AggState`] without
    /// materializing rows.
    pub(crate) fn consume_columnar(&self, cb: &ColumnarBatch, groups: &mut Groups) -> Result<()> {
        let active = cb.physical_indices();
        // Computed arguments evaluate once per batch into compact columns;
        // bare columns are read in place through the selection.
        let mut computed: Vec<Option<Column>> = Vec::with_capacity(self.args.len());
        for arg in &self.args {
            computed.push(match arg {
                ArgPlan::Expr(e) => Some(eval_columnar(e, cb, &active)?),
                _ => None,
            });
        }
        for (pos, &phys) in active.iter().enumerate() {
            let phys = phys as usize;
            let mut key = Vec::new();
            for &i in &self.key_idx {
                cb.column(i).write_value_bytes(phys, &mut key);
            }
            let entry = groups.entry(key).or_insert_with(|| {
                let key_row: Row = self
                    .key_idx
                    .iter()
                    .map(|&i| cb.column(i).value_at(phys))
                    .collect();
                (key_row, self.fresh_states())
            });
            for ((arg, col), state) in self.args.iter().zip(&computed).zip(entry.1.iter_mut()) {
                match (arg, col) {
                    (ArgPlan::Star, _) => state.update(None)?,
                    (ArgPlan::Col(i), _) => state.update_cell(cb.column(*i).cell(phys))?,
                    (ArgPlan::Expr(_), Some(col)) => state.update_cell(col.cell(pos))?,
                    (ArgPlan::Expr(_), None) => unreachable!("computed column missing"),
                }
            }
        }
        Ok(())
    }

    /// Merge a *later* partial into the running total. Per-key state
    /// arithmetic is independent across keys, so the hash map's iteration
    /// order cannot affect the result — determinism needs only that the
    /// caller present partials in batch/morsel order.
    pub(crate) fn merge_into(&self, total: &mut Groups, later: Groups) {
        for (key, (key_row, states)) in later {
            match total.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (cur, new) in e.get_mut().1.iter_mut().zip(states) {
                        cur.merge(new);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((key_row, states));
                }
            }
        }
    }

    /// Finalize: one output row per group, sorted by key bytes for
    /// reproducibility.
    pub(crate) fn finish(&self, groups: Groups, out_schema: &Arc<Schema>) -> Batch {
        let mut out: Vec<(Vec<u8>, Row)> = groups
            .into_iter()
            .map(|(key, (key_row, states))| {
                let mut row = key_row;
                for s in states {
                    row.push(s.finish());
                }
                (key, row)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let rows: Vec<Row> = out.into_iter().map(|(_, r)| r).collect();
        Batch::new(Arc::clone(out_schema), rows)
    }
}

/// Deterministic estimate of the retained bytes one aggregation group
/// charges the memory accountant. Crude on purpose: the budget verdict must
/// be a pure function of the group count, never of allocator behavior.
pub(crate) const AGG_GROUP_BYTES: u64 = 64;

/// The degraded-mode spill: groups flushed out of the hash table, keyed by
/// their encoded group key. A `BTreeMap` so the final emission is already in
/// the exact key-byte order [`AggPlan::finish`] sorts into.
type Spill = BTreeMap<Vec<u8>, (Row, Vec<AggState>)>;

/// Fold the hash table into the spill, merging per key with the same
/// earlier-partial-wins [`AggState::merge`] the in-memory path uses — so the
/// degraded result is bit-identical to the never-degraded one.
fn flush_into_spill(total: &mut Groups, spill: &mut Spill) {
    for (key, (key_row, states)) in total.drain() {
        match spill.entry(key) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                for (cur, new) in e.get_mut().1.iter_mut().zip(states) {
                    cur.merge(new);
                }
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((key_row, states));
            }
        }
    }
}

/// Blocking hash aggregation: drains its input, then emits one batch of
/// groups (key order deterministic by first appearance, then sorted by key
/// bytes for reproducibility). Each input batch folds into a fresh partial
/// table merged in arrival order — see the module docs for why.
///
/// ## Graceful degradation
///
/// Under a governed query with a byte budget, the operator charges its
/// retained group state to the memory accountant per batch. When the budget
/// trips it does **not** fail: it enters a streaming/merging mode — the hash
/// table is flushed into a sorted spill after every batch, so in-flight
/// state stays bounded by one batch's groups. Because the flush uses the
/// same per-key merge as the in-memory fold and the spill iterates in the
/// same key-byte order `finish` sorts into, the degraded result is
/// bit-identical to the never-degraded one; only `degraded_queries` (and
/// the planner's materialization-skip) reveal the downgrade.
pub struct AggregateOp {
    input: BoxedOp,
    group_by: Vec<String>,
    aggs: Vec<(AggFunc, Option<Expr>, String)>,
    schema: Arc<Schema>,
    done: bool,
}

impl AggregateOp {
    /// New aggregation.
    pub fn new(
        input: BoxedOp,
        group_by: Vec<String>,
        aggs: Vec<(AggFunc, Option<Expr>, String)>,
        schema: Arc<Schema>,
    ) -> AggregateOp {
        AggregateOp {
            input,
            group_by,
            aggs,
            schema,
            done: false,
        }
    }
}

impl Operator for AggregateOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let plan = AggPlan::resolve(&self.group_by, &self.aggs, self.input.schema())?;
        let governor = &ctx.governor;
        let budgeted = governor.config().budget_bytes.is_some();
        let mut total: Groups = HashMap::new();
        let mut spill: Option<Spill> = None;
        let mut charged = 0u64;
        while let Some(batch) = self.input.next(ctx)? {
            governor.check(ctx.clock)?;
            let mut partial: Groups = HashMap::new();
            plan.consume(&batch, &mut partial)?;
            plan.merge_into(&mut total, partial);
            if let Some(sp) = spill.as_mut() {
                // Already degraded: stream every batch's groups into the
                // spill so the hash table never outgrows one batch.
                flush_into_spill(&mut total, sp);
                continue;
            }
            if budgeted {
                let want = total.len() as u64 * AGG_GROUP_BYTES;
                if want > charged {
                    if governor.charge_bytes(want - charged) {
                        charged = want;
                    } else {
                        // Budget tripped: degrade to streaming/merging mode
                        // instead of failing the query.
                        if governor.enter_degraded() {
                            ctx.metrics().record_degraded_query();
                        }
                        governor.release_bytes(want);
                        charged = 0;
                        let mut sp = Spill::new();
                        flush_into_spill(&mut total, &mut sp);
                        spill = Some(sp);
                    }
                }
            }
        }
        governor.release_bytes(charged);
        let batch = match spill {
            Some(mut sp) => {
                flush_into_spill(&mut total, &mut sp);
                let rows: Vec<Row> = sp
                    .into_values()
                    .map(|(mut row, states)| {
                        for s in states {
                            row.push(s.finish());
                        }
                        row
                    })
                    .collect();
                Batch::new(Arc::clone(&self.schema), rows)
            }
            None => plan.finish(total, &self.schema),
        };
        Ok(Some(ExecBatch::Rows(batch)))
    }
}
