//! Hash aggregation (GROUP BY).

use std::collections::HashMap;
use std::sync::Arc;

use eva_common::{Batch, EvaError, Result, Row, Schema, Value};
use eva_expr::eval::NoUdfs;
use eva_expr::{AggFunc, Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// One aggregate's running state.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(c) => {
                // COUNT(*) counts rows; COUNT(expr) counts non-null values.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    _ => {}
                }
            }
            AggState::Sum(s) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *s += val.as_float()?;
                    }
                }
            }
            AggState::Min(m) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match m {
                            Some(cur) => val.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                            None => true,
                        };
                        if replace {
                            *m = Some(val.clone());
                        }
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match m {
                            Some(cur) => val.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                            None => true,
                        };
                        if replace {
                            *m = Some(val.clone());
                        }
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *sum += val.as_float()?;
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum(s) => Value::Float(s),
            AggState::Min(m) => m.unwrap_or(Value::Null),
            AggState::Max(m) => m.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Blocking hash aggregation: drains its input, then emits one batch of
/// groups (key order deterministic by first appearance, then sorted by key
/// bytes for reproducibility).
pub struct AggregateOp {
    input: BoxedOp,
    group_by: Vec<String>,
    aggs: Vec<(AggFunc, Option<Expr>, String)>,
    schema: Arc<Schema>,
    done: bool,
}

impl AggregateOp {
    /// New aggregation.
    pub fn new(
        input: BoxedOp,
        group_by: Vec<String>,
        aggs: Vec<(AggFunc, Option<Expr>, String)>,
        schema: Arc<Schema>,
    ) -> AggregateOp {
        AggregateOp {
            input,
            group_by,
            aggs,
            schema,
            done: false,
        }
    }
}

impl Operator for AggregateOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let in_schema = self.input.schema();
        let key_idx: Vec<usize> = self
            .group_by
            .iter()
            .map(|g| {
                in_schema
                    .index_of(g)
                    .ok_or_else(|| EvaError::Exec(format!("unknown group column '{g}'")))
            })
            .collect::<Result<_>>()?;

        let mut groups: HashMap<Vec<u8>, (Row, Vec<AggState>)> = HashMap::new();
        while let Some(batch) = self.input.next(ctx)? {
            for row in batch.rows() {
                let mut key = Vec::new();
                for &i in &key_idx {
                    row[i].write_bytes(&mut key);
                }
                let entry = groups.entry(key).or_insert_with(|| {
                    let key_row: Row = key_idx.iter().map(|&i| row[i].clone()).collect();
                    let states = self
                        .aggs
                        .iter()
                        .map(|(f, _, _)| AggState::new(*f))
                        .collect();
                    (key_row, states)
                });
                for ((_, arg, _), state) in self.aggs.iter().zip(entry.1.iter_mut()) {
                    let v = match arg {
                        Some(e) => {
                            let rc = RowContext::new(&in_schema, row, &NoUdfs);
                            Some(e.eval(&rc)?)
                        }
                        None => None,
                    };
                    state.update(v.as_ref())?;
                }
            }
        }

        let mut out: Vec<(Vec<u8>, Row)> = groups
            .into_iter()
            .map(|(key, (key_row, states))| {
                let mut row = key_row;
                for s in states {
                    row.push(s.finish());
                }
                (key, row)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let rows: Vec<Row> = out.into_iter().map(|(_, r)| r).collect();
        Ok(Some(Batch::new(Arc::clone(&self.schema), rows)))
    }
}
