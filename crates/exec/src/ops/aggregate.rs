//! Hash aggregation (GROUP BY).

use std::collections::HashMap;
use std::sync::Arc;

use eva_common::{
    Batch, CellRef, Column, ColumnarBatch, EvaError, ExecBatch, Result, Row, Schema, Value,
};
use eva_expr::eval::NoUdfs;
use eva_expr::vector::eval_columnar;
use eva_expr::{AggFunc, Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// One aggregate's running state.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

/// Numeric view of a cell, with [`Value::as_float`]'s exact error wording.
fn cell_float(c: CellRef<'_>) -> Result<f64> {
    c.as_number()
        .ok_or_else(|| EvaError::Type(format!("expected FLOAT, got {}", c.to_value())))
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match v {
            // COUNT(*): no argument, count the row.
            None => {
                if let AggState::Count(c) = self {
                    *c += 1;
                }
                Ok(())
            }
            Some(val) => self.update_cell(CellRef::from_value(val)),
        }
    }

    /// Update from an argument cell without materializing a [`Value`] —
    /// the vectorized path. NULL arguments are skipped by every function,
    /// matching the row semantics.
    fn update_cell(&mut self, c: CellRef<'_>) -> Result<()> {
        if c.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => *s += cell_float(c)?,
            AggState::Min(m) => {
                let replace = match m {
                    Some(cur) => {
                        c.sql_cmp(CellRef::from_value(cur)) == Some(std::cmp::Ordering::Less)
                    }
                    None => true,
                };
                if replace {
                    *m = Some(c.to_value());
                }
            }
            AggState::Max(m) => {
                let replace = match m {
                    Some(cur) => {
                        c.sql_cmp(CellRef::from_value(cur)) == Some(std::cmp::Ordering::Greater)
                    }
                    None => true,
                };
                if replace {
                    *m = Some(c.to_value());
                }
            }
            AggState::Avg { sum, n } => {
                *sum += cell_float(c)?;
                *n += 1;
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum(s) => Value::Float(s),
            AggState::Min(m) => m.unwrap_or(Value::Null),
            AggState::Max(m) => m.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// One aggregate's argument, resolved once against the input schema so the
/// per-row loop never re-binds names.
enum ArgPlan {
    /// `COUNT(*)`.
    Star,
    /// A bare input column, read positionally.
    Col(usize),
    /// A general expression.
    Expr(Expr),
}

/// Blocking hash aggregation: drains its input, then emits one batch of
/// groups (key order deterministic by first appearance, then sorted by key
/// bytes for reproducibility).
///
/// Columnar input feeds the hash table directly from the typed arrays:
/// group keys hash each cell's [`Value::write_bytes`] encoding (identical
/// to the row path, so grouping and output order cannot diverge) and
/// argument cells update [`AggState`] without materializing rows.
pub struct AggregateOp {
    input: BoxedOp,
    group_by: Vec<String>,
    aggs: Vec<(AggFunc, Option<Expr>, String)>,
    schema: Arc<Schema>,
    done: bool,
}

impl AggregateOp {
    /// New aggregation.
    pub fn new(
        input: BoxedOp,
        group_by: Vec<String>,
        aggs: Vec<(AggFunc, Option<Expr>, String)>,
        schema: Arc<Schema>,
    ) -> AggregateOp {
        AggregateOp {
            input,
            group_by,
            aggs,
            schema,
            done: false,
        }
    }
}

/// The hash table: key bytes → (key row, per-aggregate states).
type Groups = HashMap<Vec<u8>, (Row, Vec<AggState>)>;

impl AggregateOp {
    fn consume_rows(
        &self,
        batch: &Batch,
        in_schema: &Arc<Schema>,
        key_idx: &[usize],
        args: &[ArgPlan],
        groups: &mut Groups,
    ) -> Result<()> {
        for row in batch.rows() {
            let mut key = Vec::new();
            for &i in key_idx {
                row[i].write_bytes(&mut key);
            }
            let entry = groups.entry(key).or_insert_with(|| {
                let key_row: Row = key_idx.iter().map(|&i| row[i].clone()).collect();
                let states = self
                    .aggs
                    .iter()
                    .map(|(f, _, _)| AggState::new(*f))
                    .collect();
                (key_row, states)
            });
            for (arg, state) in args.iter().zip(entry.1.iter_mut()) {
                match arg {
                    ArgPlan::Star => state.update(None)?,
                    ArgPlan::Col(i) => state.update_cell(CellRef::from_value(&row[*i]))?,
                    ArgPlan::Expr(e) => {
                        let rc = RowContext::new(in_schema, row, &NoUdfs);
                        let v = e.eval(&rc)?;
                        state.update(Some(&v))?;
                    }
                }
            }
        }
        Ok(())
    }

    fn consume_columnar(
        &self,
        cb: &ColumnarBatch,
        key_idx: &[usize],
        args: &[ArgPlan],
        groups: &mut Groups,
    ) -> Result<()> {
        let active = cb.physical_indices();
        // Computed arguments evaluate once per batch into compact columns;
        // bare columns are read in place through the selection.
        let mut computed: Vec<Option<Column>> = Vec::with_capacity(args.len());
        for arg in args {
            computed.push(match arg {
                ArgPlan::Expr(e) => Some(eval_columnar(e, cb, &active)?),
                _ => None,
            });
        }
        for (pos, &phys) in active.iter().enumerate() {
            let phys = phys as usize;
            let mut key = Vec::new();
            for &i in key_idx {
                cb.column(i).write_value_bytes(phys, &mut key);
            }
            let entry = groups.entry(key).or_insert_with(|| {
                let key_row: Row = key_idx
                    .iter()
                    .map(|&i| cb.column(i).value_at(phys))
                    .collect();
                let states = self
                    .aggs
                    .iter()
                    .map(|(f, _, _)| AggState::new(*f))
                    .collect();
                (key_row, states)
            });
            for ((arg, col), state) in args.iter().zip(&computed).zip(entry.1.iter_mut()) {
                match (arg, col) {
                    (ArgPlan::Star, _) => state.update(None)?,
                    (ArgPlan::Col(i), _) => state.update_cell(cb.column(*i).cell(phys))?,
                    (ArgPlan::Expr(_), Some(col)) => state.update_cell(col.cell(pos))?,
                    (ArgPlan::Expr(_), None) => unreachable!("computed column missing"),
                }
            }
        }
        Ok(())
    }
}

impl Operator for AggregateOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;

        let in_schema = self.input.schema();
        let key_idx: Vec<usize> = self
            .group_by
            .iter()
            .map(|g| {
                in_schema
                    .index_of(g)
                    .ok_or_else(|| EvaError::Exec(format!("unknown group column '{g}'")))
            })
            .collect::<Result<_>>()?;
        // Resolve argument positions once; unresolvable columns stay
        // expressions so the evaluator reports the standard binder error.
        let args: Vec<ArgPlan> = self
            .aggs
            .iter()
            .map(|(_, arg, _)| match arg {
                None => ArgPlan::Star,
                Some(Expr::Column(c)) => match in_schema.index_of(c) {
                    Some(i) => ArgPlan::Col(i),
                    None => ArgPlan::Expr(Expr::Column(c.clone())),
                },
                Some(e) => ArgPlan::Expr(e.clone()),
            })
            .collect();

        let mut groups: Groups = HashMap::new();
        while let Some(batch) = self.input.next(ctx)? {
            match batch {
                ExecBatch::Columnar(cb) => {
                    self.consume_columnar(&cb, &key_idx, &args, &mut groups)?
                }
                ExecBatch::Rows(b) => {
                    self.consume_rows(&b, &in_schema, &key_idx, &args, &mut groups)?
                }
            }
        }

        let mut out: Vec<(Vec<u8>, Row)> = groups
            .into_iter()
            .map(|(key, (key_row, states))| {
                let mut row = key_row;
                for s in states {
                    row.push(s.finish());
                }
                (key, row)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let rows: Vec<Row> = out.into_iter().map(|(_, r)| r).collect();
        Ok(Some(ExecBatch::Rows(Batch::new(
            Arc::clone(&self.schema),
            rows,
        ))))
    }
}
