//! Projection.

use std::sync::Arc;

use eva_common::{Batch, Result, Row, Schema};
use eva_expr::eval::NoUdfs;
use eva_expr::{Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// Evaluates projection expressions per row.
pub struct ProjectOp {
    input: BoxedOp,
    items: Vec<(Expr, String)>,
    schema: Arc<Schema>,
}

impl ProjectOp {
    /// New projection.
    pub fn new(input: BoxedOp, items: Vec<(Expr, String)>, schema: Arc<Schema>) -> ProjectOp {
        ProjectOp {
            input,
            items,
            schema,
        }
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next(ctx)? else {
            return Ok(None);
        };
        let in_schema = batch.schema().clone();
        let mut rows = Vec::with_capacity(batch.len());
        for row in batch.rows() {
            let rc = RowContext::new(&in_schema, row, &NoUdfs);
            let mut out: Row = Vec::with_capacity(self.items.len());
            for (expr, _) in &self.items {
                out.push(expr.eval(&rc)?);
            }
            rows.push(out);
        }
        Ok(Some(Batch::new(Arc::clone(&self.schema), rows)))
    }
}
