//! Projection.

use std::sync::Arc;

use eva_common::{Batch, ColumnarBatch, ExecBatch, Result, Row, Schema};
use eva_expr::eval::NoUdfs;
use eva_expr::vector::eval_columnar;
use eva_expr::{Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// How the projection executes, resolved once against the input schema
/// instead of re-binding column names per row. Shared with the
/// morsel-parallel pipeline, whose workers run the same columnar kernel
/// per morsel.
pub(crate) enum ProjPlan {
    /// Every item is a bare input column: reorder by position. On the
    /// columnar path this is zero-copy (`Arc`-shared columns, selection
    /// carried through).
    Reorder(Vec<usize>),
    /// General expressions: evaluate per item.
    Compute,
}

impl ProjPlan {
    /// `Reorder` when every item is a resolvable bare column. Unknown
    /// columns fall back to `Compute` so the evaluator reports them with
    /// the standard binder error.
    pub(crate) fn resolve(items: &[(Expr, String)], in_schema: &Schema) -> ProjPlan {
        let mut idx = Vec::with_capacity(items.len());
        for (expr, _) in items {
            match expr {
                Expr::Column(c) => match in_schema.index_of(c) {
                    Some(i) => idx.push(i),
                    None => return ProjPlan::Compute,
                },
                _ => return ProjPlan::Compute,
            }
        }
        ProjPlan::Reorder(idx)
    }

    /// The columnar projection kernel: pure compute, no clock, no metrics
    /// — safe on worker threads.
    pub(crate) fn apply_columnar(
        &self,
        items: &[(Expr, String)],
        schema: &Arc<Schema>,
        cb: &ColumnarBatch,
    ) -> Result<ColumnarBatch> {
        match self {
            ProjPlan::Reorder(idx) => Ok(cb.project(Arc::clone(schema), idx)),
            ProjPlan::Compute => {
                let active = cb.physical_indices();
                let mut columns = Vec::with_capacity(items.len());
                for (expr, _) in items {
                    columns.push(Arc::new(eval_columnar(expr, cb, &active)?));
                }
                Ok(ColumnarBatch::new(
                    Arc::clone(schema),
                    columns,
                    active.len(),
                ))
            }
        }
    }
}

/// Evaluates projection expressions; bare-column projections reduce to a
/// positional reorder.
pub struct ProjectOp {
    input: BoxedOp,
    items: Vec<(Expr, String)>,
    schema: Arc<Schema>,
    plan: ProjPlan,
}

impl ProjectOp {
    /// New projection.
    pub fn new(input: BoxedOp, items: Vec<(Expr, String)>, schema: Arc<Schema>) -> ProjectOp {
        let in_schema = input.schema();
        let plan = ProjPlan::resolve(&items, &in_schema);
        ProjectOp {
            input,
            items,
            schema,
            plan,
        }
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        let Some(batch) = self.input.next(ctx)? else {
            return Ok(None);
        };
        match (batch, &self.plan) {
            (ExecBatch::Columnar(cb), plan) => Ok(Some(ExecBatch::Columnar(plan.apply_columnar(
                &self.items,
                &self.schema,
                &cb,
            )?))),
            (ExecBatch::Rows(batch), ProjPlan::Reorder(idx)) => {
                let rows: Vec<Row> = batch
                    .rows()
                    .iter()
                    .map(|row| idx.iter().map(|&i| row[i].clone()).collect())
                    .collect();
                Ok(Some(ExecBatch::Rows(Batch::new(
                    Arc::clone(&self.schema),
                    rows,
                ))))
            }
            (ExecBatch::Rows(batch), ProjPlan::Compute) => {
                let in_schema = batch.schema().clone();
                let mut rows = Vec::with_capacity(batch.len());
                for row in batch.rows() {
                    let rc = RowContext::new(&in_schema, row, &NoUdfs);
                    let mut out: Row = Vec::with_capacity(self.items.len());
                    for (expr, _) in &self.items {
                        out.push(expr.eval(&rc)?);
                    }
                    rows.push(out);
                }
                Ok(Some(ExecBatch::Rows(Batch::new(
                    Arc::clone(&self.schema),
                    rows,
                ))))
            }
        }
    }
}
