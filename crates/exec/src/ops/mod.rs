//! Physical operators.

pub mod aggregate;
pub mod apply;
pub mod filter;
pub mod project;
pub mod scan;
pub mod sort_limit;

use eva_common::{Batch, Result, Schema};
use std::sync::Arc;

use crate::context::ExecCtx;

/// A pull-based operator producing batches until exhausted.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> Arc<Schema>;
    /// Produce the next batch, or `None` when done.
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>>;
}

/// Boxed operator alias.
pub type BoxedOp = Box<dyn Operator>;
