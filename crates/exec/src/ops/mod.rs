//! Physical operators.

pub mod aggregate;
pub mod apply;
pub mod filter;
pub mod parallel;
pub mod project;
pub mod scan;
pub mod sort_limit;

use eva_common::{Batch, ExecBatch, Result, Schema};
use std::sync::Arc;

use crate::context::ExecCtx;

/// A pull-based operator producing batches until exhausted.
///
/// Batches flow in one of two forms (see [`ExecBatch`]): the non-UDF hot
/// path (scan → filter → project → aggregate) stays columnar; row-oriented
/// operators (APPLY, SORT) pivot their input through [`into_rows`].
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> Arc<Schema>;
    /// Produce the next batch, or `None` when done.
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>>;
}

/// Boxed operator alias.
pub type BoxedOp = Box<dyn Operator>;

/// Pivot a batch to row form at a row-oriented boundary (APPLY input, SORT
/// buffering, final output collection), charging the `rows_pivoted`
/// counter — the observable cost of leaving the columnar path.
pub(crate) fn into_rows(ctx: &ExecCtx<'_>, b: ExecBatch) -> Batch {
    match b {
        ExecBatch::Rows(b) => b,
        ExecBatch::Columnar(cb) => {
            ctx.metrics().record_rows_pivoted(cb.len() as u64);
            cb.to_batch()
        }
    }
}

/// Forces row-oriented flow by pivoting every columnar batch its input
/// produces. Downstream operators then take their row-at-a-time paths —
/// this is how benchmarks compare the legacy row pipeline against the
/// vectorized one over the same plan.
pub struct PivotRowsOp {
    input: BoxedOp,
}

impl PivotRowsOp {
    /// Wrap `input`, pivoting its output to rows.
    pub fn new(input: BoxedOp) -> PivotRowsOp {
        PivotRowsOp { input }
    }
}

impl Operator for PivotRowsOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        Ok(self
            .input
            .next(ctx)?
            .map(|b| ExecBatch::Rows(into_rows(ctx, b))))
    }
}
