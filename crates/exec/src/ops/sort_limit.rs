//! Sort and limit.

use std::cmp::Ordering;
use std::sync::Arc;

use eva_common::{Batch, EvaError, ExecBatch, Result, Row, Schema};

use crate::context::ExecCtx;
use crate::ops::{into_rows, BoxedOp, Operator};

/// Blocking sort by column keys.
///
/// Input buffers in whatever form it arrives. When the whole input is one
/// columnar batch — the common shape on the vectorized hot path — the sort
/// permutes the batch's *selection vector* by comparing key cells in place:
/// columns stay `Arc`-shared, nothing pivots, and `rows_pivoted` stays
/// untouched (downstream consumers pivot only if and when they must).
/// Multi-batch or row-form input falls back to materializing rows, charging
/// `rows_pivoted` only for the columnar-sourced ones.
pub struct SortOp {
    input: BoxedOp,
    keys: Vec<(String, bool)>,
    done: bool,
}

impl SortOp {
    /// New sort (`(column, descending)` keys).
    pub fn new(input: BoxedOp, keys: Vec<(String, bool)>) -> SortOp {
        SortOp {
            input,
            keys,
            done: false,
        }
    }
}

/// Compare by keys, ties keeping arrival order via stable sort; NULLs
/// compare equal everywhere (`sql_cmp` yields `None`), matching the
/// row-path comparator exactly.
fn chain_ordering<I: Iterator<Item = Option<Ordering>>>(cmps: I, descs: &[bool]) -> Ordering {
    for (cmp, &desc) in cmps.zip(descs) {
        let ord = cmp.unwrap_or(Ordering::Equal);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

impl Operator for SortOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let schema = self.input.schema();
        let key_idx: Vec<usize> = self
            .keys
            .iter()
            .map(|(c, _)| {
                schema
                    .index_of(c)
                    .ok_or_else(|| EvaError::Exec(format!("unknown sort column '{c}'")))
            })
            .collect::<Result<_>>()?;
        let descs: Vec<bool> = self.keys.iter().map(|(_, d)| *d).collect();
        // Buffer unpivoted: the single-columnar-batch case sorts in place.
        let mut batches: Vec<ExecBatch> = Vec::new();
        while let Some(batch) = self.input.next(ctx)? {
            batches.push(batch);
        }
        if batches.len() == 1 {
            if let ExecBatch::Columnar(cb) = &batches[0] {
                let mut sel = cb.physical_indices();
                sel.sort_by(|&a, &b| {
                    chain_ordering(
                        key_idx.iter().map(|&i| {
                            let col = cb.column(i);
                            col.cell(a as usize).sql_cmp(col.cell(b as usize))
                        }),
                        &descs,
                    )
                });
                return Ok(Some(ExecBatch::Columnar(cb.with_selection(sel))));
            }
        }
        // General case: materialize rows in arrival order (columnar batches
        // charge `rows_pivoted` here) and stable-sort them.
        let mut rows: Vec<Row> = Vec::new();
        for batch in batches {
            rows.extend(into_rows(ctx, batch).into_rows());
        }
        rows.sort_by(|a, b| chain_ordering(key_idx.iter().map(|&i| a[i].sql_cmp(&b[i])), &descs));
        Ok(Some(ExecBatch::Rows(Batch::new(schema, rows))))
    }
}

/// Streaming limit.
pub struct LimitOp {
    input: BoxedOp,
    remaining: u64,
}

impl LimitOp {
    /// New limit.
    pub fn new(input: BoxedOp, n: u64) -> LimitOp {
        LimitOp {
            input,
            remaining: n,
        }
    }
}

impl Operator for LimitOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(batch) = self.input.next(ctx)? else {
            return Ok(None);
        };
        let take = (self.remaining as usize).min(batch.len());
        self.remaining -= take as u64;
        if take == batch.len() {
            return Ok(Some(batch));
        }
        match batch {
            // Truncating a columnar batch is a selection shrink — columns
            // stay shared.
            ExecBatch::Columnar(cb) => {
                let keep: Vec<u32> = cb.physical_indices().into_iter().take(take).collect();
                Ok(Some(ExecBatch::Columnar(cb.with_selection(keep))))
            }
            ExecBatch::Rows(batch) => {
                let schema = batch.schema().clone();
                let rows: Vec<Row> = batch.into_rows().into_iter().take(take).collect();
                Ok(Some(ExecBatch::Rows(Batch::new(schema, rows))))
            }
        }
    }
}
