//! Sort and limit.

use std::sync::Arc;

use eva_common::{Batch, EvaError, ExecBatch, Result, Row, Schema};

use crate::context::ExecCtx;
use crate::ops::{into_rows, BoxedOp, Operator};

/// Blocking sort by column keys. Sorting permutes whole tuples, so columnar
/// input pivots to rows at the buffering step (charged as `rows_pivoted`).
pub struct SortOp {
    input: BoxedOp,
    keys: Vec<(String, bool)>,
    done: bool,
}

impl SortOp {
    /// New sort (`(column, descending)` keys).
    pub fn new(input: BoxedOp, keys: Vec<(String, bool)>) -> SortOp {
        SortOp {
            input,
            keys,
            done: false,
        }
    }
}

impl Operator for SortOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let schema = self.input.schema();
        let key_idx: Vec<(usize, bool)> = self
            .keys
            .iter()
            .map(|(c, d)| {
                schema
                    .index_of(c)
                    .map(|i| (i, *d))
                    .ok_or_else(|| EvaError::Exec(format!("unknown sort column '{c}'")))
            })
            .collect::<Result<_>>()?;
        let mut rows: Vec<Row> = Vec::new();
        while let Some(batch) = self.input.next(ctx)? {
            rows.extend(into_rows(ctx, batch).into_rows());
        }
        rows.sort_by(|a, b| {
            for &(i, desc) in &key_idx {
                let ord = a[i].sql_cmp(&b[i]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(Some(ExecBatch::Rows(Batch::new(schema, rows))))
    }
}

/// Streaming limit.
pub struct LimitOp {
    input: BoxedOp,
    remaining: u64,
}

impl LimitOp {
    /// New limit.
    pub fn new(input: BoxedOp, n: u64) -> LimitOp {
        LimitOp {
            input,
            remaining: n,
        }
    }
}

impl Operator for LimitOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(batch) = self.input.next(ctx)? else {
            return Ok(None);
        };
        let take = (self.remaining as usize).min(batch.len());
        self.remaining -= take as u64;
        if take == batch.len() {
            return Ok(Some(batch));
        }
        match batch {
            // Truncating a columnar batch is a selection shrink — columns
            // stay shared.
            ExecBatch::Columnar(cb) => {
                let keep: Vec<u32> = cb.physical_indices().into_iter().take(take).collect();
                Ok(Some(ExecBatch::Columnar(cb.with_selection(keep))))
            }
            ExecBatch::Rows(batch) => {
                let schema = batch.schema().clone();
                let rows: Vec<Row> = batch.into_rows().into_iter().take(take).collect();
                Ok(Some(ExecBatch::Rows(Batch::new(schema, rows))))
            }
        }
    }
}
