//! Morsel-driven parallel execution of UDF-free pipeline segments.
//!
//! [`ParallelPipelineOp`] replaces a planner-marked
//! [`ParallelSegment`](eva_planner::ParallelSegment) — `Scan ←
//! (Filter | Project)*`, optionally capped by an `Aggregate` pipeline
//! breaker — at executor build time. The plan itself is never rewritten, so
//! `EXPLAIN` output and operator ids are untouched.
//!
//! ## Execution model
//!
//! The scan range is partitioned into fixed-size frame-range morsels
//! (`StorageEngine::scan_morsels`); one pipeline instance runs per worker on
//! the work-stealing pool (`WorkerPool::run_stealing`), each morsel flowing
//! scan → filter → project (→ partial aggregate) entirely on its worker.
//! Workers are **pure compute**: they use the uncharged scan and never touch
//! the clock, the metrics sink, the op-stats collector, or the trace sink.
//!
//! ## Determinism
//!
//! Results come back indexed by morsel, so everything the caller derives
//! happens in *morsel order* regardless of which lane ran what:
//!
//! - non-aggregating segments emit surviving batches in morsel order —
//!   bit-identical to a serial run with `batch_size = morsel_rows`;
//! - an aggregate breaker merges per-morsel partial states in morsel order
//!   with the same merge the serial operator applies per batch, so even
//!   float accumulation order matches;
//! - all accounting (IO charges, counters, per-op stats) is *replayed* on
//!   the caller thread, morsel by morsel, mirroring exactly what the
//!   instrumented serial operators would have recorded for the same batch
//!   boundaries. The only new counters are `morsels_dispatched` /
//!   `parallel_pipelines` (deterministic) and `morsels_stolen`
//!   (scheduling-dependent, masked by `MetricsSnapshot::deterministic`).

use std::collections::HashMap;
use std::sync::Arc;

use eva_common::{Batch, ColumnarBatch, ExecBatch, Result, Schema, SpanKind, SpanRef};
use eva_expr::vector::filter_columnar;
use eva_expr::Expr;
use eva_planner::{ParallelSegment, ParallelStage};
use eva_storage::StorageEngine;

use crate::context::ExecCtx;
use crate::ops::aggregate::{AggPlan, Groups};
use crate::ops::project::ProjPlan;
use crate::ops::Operator;

/// A stage kernel resolved against its concrete input schema, shared with
/// the workers through an `Arc`.
enum StageKernel {
    Filter {
        predicate: Expr,
    },
    Project {
        items: Vec<(Expr, String)>,
        schema: Arc<Schema>,
        plan: ProjPlan,
    },
}

/// What one morsel produced, shipped back from its worker.
struct MorselOut {
    /// Frames the morsel scanned.
    scanned: u64,
    /// Surviving row count after each stage, aligned with the segment's
    /// stage list. Once a filter zeroes it, later stages never ran.
    stage_rows: Vec<u64>,
    /// The final batch (`None` once filtered empty) — concat mode only.
    batch: Option<ColumnarBatch>,
    /// Per-morsel partial aggregate states — breaker mode only.
    partial: Option<Groups>,
}

/// Run one morsel through the pipeline on a worker thread. Pure compute:
/// no clock, no counters, no tracing.
fn run_morsel(
    storage: &StorageEngine,
    dataset: &str,
    kernels: &[StageKernel],
    agg: Option<&AggPlan>,
    range: (u64, u64),
) -> Result<MorselOut> {
    let cb = storage.scan_frames_columnar_uncharged(dataset, range.0, range.1)?;
    let scanned = cb.len() as u64;
    let mut stage_rows = Vec::with_capacity(kernels.len());
    let mut cur = Some(cb);
    for kernel in kernels {
        let Some(cb) = cur.take() else {
            stage_rows.push(0);
            continue;
        };
        cur = match kernel {
            StageKernel::Filter { predicate } => {
                let sel = filter_columnar(predicate, &cb)?;
                if sel.is_empty() {
                    None
                } else {
                    Some(cb.with_selection(sel))
                }
            }
            StageKernel::Project {
                items,
                schema,
                plan,
            } => Some(plan.apply_columnar(items, schema, &cb)?),
        };
        stage_rows.push(cur.as_ref().map_or(0, |c| c.len() as u64));
    }
    let partial = match (agg, &cur) {
        (Some(plan), Some(cb)) => {
            let mut groups: Groups = HashMap::new();
            plan.consume_columnar(cb, &mut groups)?;
            Some(groups)
        }
        (Some(_), None) => Some(HashMap::new()),
        (None, _) => None,
    };
    Ok(MorselOut {
        scanned,
        stage_rows,
        batch: if agg.is_none() { cur } else { None },
        partial,
    })
}

/// Replay one morsel's accounting on the caller thread: the IO charge, the
/// `frames_scanned` / `columnar_*` counters, and the subsumed operators'
/// per-op stats — exactly what the instrumented serial pipeline would have
/// recorded for the same batch boundaries. Returns the simulated
/// milliseconds charged.
fn replay_morsel(ctx: &ExecCtx<'_>, seg: &ParallelSegment, m: &MorselOut) -> f64 {
    let before = ctx.clock.snapshot();
    ctx.storage.charge_frame_scan(m.scanned, ctx.clock);
    let delta = ctx.clock.snapshot().since(&before);
    // The scan's emission: serial scans only reach their instrumented
    // wrapper with non-empty batches (ranges are clamped to the dataset).
    if m.scanned > 0 {
        ctx.metrics().record_columnar_batch(m.scanned);
    }
    ctx.op_stats.update(seg.scan_op_id, |s| {
        s.cum = s.cum.plus(&delta);
        if m.scanned > 0 {
            s.rows_out += m.scanned;
            s.batches += 1;
        }
    });
    // Each stage's cumulative cost includes everything below it (the serial
    // wrappers nest), so every stage absorbs the scan delta per morsel; rows
    // and batches are recorded only when the stage actually emitted.
    for (stage, &rows) in seg.stages.iter().zip(&m.stage_rows) {
        if rows > 0 {
            ctx.metrics().record_columnar_batch(rows);
        }
        ctx.op_stats.update(stage.op_id(), |s| {
            s.cum = s.cum.plus(&delta);
            if rows > 0 {
                s.rows_out += rows;
                s.batches += 1;
            }
        });
    }
    // The breaker consumes every morsel inside one `next()` call, so its
    // cumulative cost also spans all of them; its single emission is
    // recorded when the merged batch goes out.
    if let Some(b) = &seg.breaker {
        ctx.op_stats.update(b.op_id, |s| {
            s.cum = s.cum.plus(&delta);
        });
    }
    delta.total_ms()
}

/// Results of the (single) dispatch, drained incrementally by `next()`.
struct RunState {
    /// Per-morsel outputs, in morsel order.
    results: Vec<MorselOut>,
    /// Next morsel whose accounting has not been replayed yet.
    cursor: usize,
    /// The merged aggregate output, if this segment has a breaker.
    agg_batch: Option<Batch>,
}

/// Executor-internal operator running a parallel-safe segment morsel-wise.
/// Built *instead of* the segment's serial operators when the scan range
/// clears `parallel_scan_min_rows`; carries no instrumentation wrapper and
/// replays the subsumed operators' accounting itself.
pub struct ParallelPipelineOp {
    seg: ParallelSegment,
    out_schema: Arc<Schema>,
    /// Cached `Pipeline` trace span, one per plan position like the serial
    /// wrappers' operator spans.
    span: Option<SpanRef>,
    state: Option<RunState>,
    done: bool,
}

impl ParallelPipelineOp {
    /// New parallel pipeline over a marked segment.
    pub fn new(seg: ParallelSegment) -> ParallelPipelineOp {
        let mut out_schema = Arc::clone(&seg.scan_schema);
        for stage in &seg.stages {
            if let ParallelStage::Project { schema, .. } = stage {
                out_schema = Arc::clone(schema);
            }
        }
        if let Some(b) = &seg.breaker {
            out_schema = Arc::clone(&b.schema);
        }
        ParallelPipelineOp {
            seg,
            out_schema,
            span: None,
            state: None,
            done: false,
        }
    }

    /// Resolve stage kernels bottom-up, tracking the evolving schema, and
    /// the breaker's aggregation plan against the chain's output schema.
    fn resolve(&self) -> Result<(Vec<StageKernel>, Option<AggPlan>)> {
        let mut schema = Arc::clone(&self.seg.scan_schema);
        let mut kernels = Vec::with_capacity(self.seg.stages.len());
        for stage in &self.seg.stages {
            match stage {
                ParallelStage::Filter { predicate, .. } => kernels.push(StageKernel::Filter {
                    predicate: predicate.clone(),
                }),
                ParallelStage::Project {
                    items, schema: out, ..
                } => {
                    let plan = ProjPlan::resolve(items, &schema);
                    kernels.push(StageKernel::Project {
                        items: items.clone(),
                        schema: Arc::clone(out),
                        plan,
                    });
                    schema = Arc::clone(out);
                }
            }
        }
        let agg = match &self.seg.breaker {
            Some(b) => Some(AggPlan::resolve(&b.group_by, &b.aggs, schema)?),
            None => None,
        };
        Ok((kernels, agg))
    }

    /// Dispatch every morsel onto the work-stealing pool and stitch the
    /// results back in morsel order. Runs once, on the first `next()`.
    fn dispatch(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        let (kernels, agg) = self.resolve()?;
        let agg = agg.map(Arc::new);
        let morsels = ctx.storage.scan_morsels(
            &self.seg.dataset,
            self.seg.range.0,
            self.seg.range.1,
            ctx.config.morsel_rows.max(1) as u64,
            &ctx.governor,
        )?;
        let n_morsels = morsels.len();
        let (outs, reports) = if n_morsels == 0 {
            (Vec::new(), Vec::new())
        } else {
            // The workers get their own handles: the storage engine clones
            // cheaply (`Arc`-backed), kernels and the aggregation plan ride
            // in `Arc`s. Everything they touch is pure compute — except the
            // governor, which is the designed exception: lanes observe the
            // cancellation token between morsels (`morsel_gate` /
            // `lane_break`) but never charge or record anything.
            let storage: StorageEngine = ctx.storage.clone();
            let dataset = self.seg.dataset.clone();
            let kernels = Arc::new(kernels);
            let agg_w = agg.clone();
            let gate = ctx.governor.clone();
            let lanes = ctx.governor.clone();
            ctx.pool().run_stealing_cancellable(
                n_morsels,
                move || lanes.lane_break(),
                move |i| {
                    if !gate.morsel_gate(i as u64) {
                        return None;
                    }
                    Some(run_morsel(
                        &storage,
                        &dataset,
                        &kernels,
                        agg_w.as_deref(),
                        morsels[i],
                    ))
                },
            )
        };
        // Walk the outputs in morsel order. The contiguous completed prefix
        // is kept; the first gap (a refused or unran morsel) or the
        // lowest-indexed error decides the outcome — exactly the boundary a
        // serial run with the same morsel schedule would have stopped at.
        let mut results = Vec::with_capacity(outs.len());
        let mut failure: Option<eva_common::EvaError> = None;
        for out in outs {
            match out.flatten() {
                Some(Ok(m)) => results.push(m),
                Some(Err(e)) => {
                    failure = Some(e);
                    break;
                }
                None => {
                    // A morsel the gate refused or no lane ran: surface the
                    // governor's cancellation (the gate always trips the
                    // token before refusing).
                    failure = Some(match ctx.governor.check_token() {
                        Err(e) => e,
                        Ok(()) => ctx.governor.cancel_error(),
                    });
                    break;
                }
            }
        }
        if let Some(err) = failure {
            // Replay the completed prefix's accounting (IO charges, scan
            // counters, per-op stats) before unwinding, so the deterministic
            // counters of a cancelled run cover exactly the morsels that
            // completed — bit-identical at any worker-pool width.
            for m in &results {
                replay_morsel(ctx, &self.seg, m);
            }
            return Err(err);
        }
        // Counters — on the caller thread, once per engaged pipeline. The
        // morsel count is deterministic (plan shape + config + row count);
        // the steal count depends on scheduling and is masked by
        // `MetricsSnapshot::deterministic`.
        ctx.metrics().record_parallel_pipeline(results.len() as u64);
        let stolen: u64 = reports.iter().map(|r| r.stolen).sum();
        if stolen > 0 {
            ctx.metrics().record_morsels_stolen(stolen);
        }
        // Per-lane spans under the pipeline span, recorded by the caller
        // (workers never touch the sink). Wall time is real; simulated cost
        // is zero here because the charges are replayed per morsel.
        for (lane, r) in reports.iter().enumerate() {
            ctx.trace().leaf(
                SpanKind::Operator,
                &format!("worker-{lane}"),
                0.0,
                r.wall_ns,
                r.executed,
            );
        }
        // Breaker mode: merge per-morsel partials in morsel order and
        // finalize — the same fold the serial operator applies per batch.
        let agg_batch = match (&agg, &self.seg.breaker) {
            (Some(plan), Some(b)) => {
                let mut total: Groups = HashMap::new();
                for m in &mut results {
                    if let Some(partial) = m.partial.take() {
                        plan.merge_into(&mut total, partial);
                    }
                }
                Some(plan.finish(total, &b.schema))
            }
            _ => None,
        };
        self.state = Some(RunState {
            results,
            cursor: 0,
            agg_batch,
        });
        Ok(())
    }

    /// The un-traced body of `next()`; accumulates the simulated
    /// milliseconds replayed during this call into `sim_ms`.
    fn next_inner(&mut self, ctx: &ExecCtx<'_>, sim_ms: &mut f64) -> Result<Option<ExecBatch>> {
        if self.state.is_none() {
            self.dispatch(ctx)?;
        }
        let seg = &self.seg;
        let state = self.state.as_mut().expect("dispatched");
        if let Some(b) = &seg.breaker {
            // Breaker mode: replay every morsel, then emit the single
            // merged batch. The aggregate's own emission stats land here.
            while state.cursor < state.results.len() {
                *sim_ms += replay_morsel(ctx, seg, &state.results[state.cursor]);
                state.cursor += 1;
            }
            let batch = state.agg_batch.take().expect("one aggregate emission");
            ctx.op_stats.update(b.op_id, |s| {
                s.rows_out += batch.len() as u64;
                s.batches += 1;
            });
            self.done = true;
            return Ok(Some(ExecBatch::Rows(batch)));
        }
        // Concat mode: replay morsels in order until one produced output and
        // emit it; trailing empty morsels are replayed on the final call.
        while state.cursor < state.results.len() {
            let idx = state.cursor;
            *sim_ms += replay_morsel(ctx, seg, &state.results[idx]);
            state.cursor += 1;
            if let Some(cb) = state.results[idx].batch.take() {
                return Ok(Some(ExecBatch::Columnar(cb)));
            }
        }
        self.done = true;
        Ok(None)
    }
}

impl Operator for ParallelPipelineOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        if self.done {
            return Ok(None);
        }
        let (token, span) = ctx.trace().enter(
            self.span,
            SpanKind::Pipeline,
            "ParallelPipeline",
            Some(self.seg.root_op_id),
        );
        if span.is_some() {
            self.span = span;
        }
        let mut sim_ms = 0.0;
        let out = self.next_inner(ctx, &mut sim_ms);
        let rows = match &out {
            Ok(Some(batch)) => batch.len() as u64,
            _ => 0,
        };
        // Close the span before propagating errors so the scope stack stays
        // balanced even when execution aborts mid-pipeline.
        ctx.trace().exit(token, sim_ms, rows);
        out
    }
}
