//! Selection over UDF-free predicates.

use std::sync::Arc;

use eva_common::{Batch, Result, Schema};
use eva_expr::eval::NoUdfs;
use eva_expr::{Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// Filters rows by a predicate. The optimizer guarantees no UDF calls
/// remain in post-rewrite predicates (they were lowered to applies).
pub struct FilterOp {
    input: BoxedOp,
    predicate: Expr,
}

impl FilterOp {
    /// New filter.
    pub fn new(input: BoxedOp, predicate: Expr) -> FilterOp {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        loop {
            let Some(batch) = self.input.next(ctx)? else {
                return Ok(None);
            };
            let schema = batch.schema().clone();
            let mut kept = Vec::new();
            for row in batch.into_rows() {
                let rc = RowContext::new(&schema, &row, &NoUdfs);
                if self.predicate.eval_predicate(&rc)? {
                    kept.push(row);
                }
            }
            // Skip empty batches but keep pulling (don't signal end early).
            if !kept.is_empty() {
                return Ok(Some(Batch::new(schema, kept)));
            }
        }
    }
}
