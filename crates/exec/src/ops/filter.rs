//! Selection over UDF-free predicates.

use std::sync::Arc;

use eva_common::{Batch, ExecBatch, Result, Schema};
use eva_expr::eval::NoUdfs;
use eva_expr::vector::filter_columnar;
use eva_expr::{Expr, RowContext};

use crate::context::ExecCtx;
use crate::ops::{BoxedOp, Operator};

/// Filters rows by a predicate. The optimizer guarantees no UDF calls
/// remain in post-rewrite predicates (they were lowered to applies).
///
/// Columnar input is filtered *in place*: the vectorized evaluator returns
/// the surviving physical indices and the batch is narrowed to that
/// selection — no row is copied. Row input (post-APPLY) falls back to the
/// scalar per-row evaluator.
pub struct FilterOp {
    input: BoxedOp,
    predicate: Expr,
}

impl FilterOp {
    /// New filter.
    pub fn new(input: BoxedOp, predicate: Expr) -> FilterOp {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> Arc<Schema> {
        self.input.schema()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        loop {
            let Some(batch) = self.input.next(ctx)? else {
                return Ok(None);
            };
            // Skip empty batches but keep pulling (don't signal end early).
            match batch {
                ExecBatch::Columnar(cb) => {
                    let sel = filter_columnar(&self.predicate, &cb)?;
                    if !sel.is_empty() {
                        return Ok(Some(ExecBatch::Columnar(cb.with_selection(sel))));
                    }
                }
                ExecBatch::Rows(batch) => {
                    let schema = batch.schema().clone();
                    let mut kept = Vec::with_capacity(batch.len());
                    for row in batch.into_rows() {
                        let rc = RowContext::new(&schema, &row, &NoUdfs);
                        if self.predicate.eval_predicate(&rc)? {
                            kept.push(row);
                        }
                    }
                    if !kept.is_empty() {
                        return Ok(Some(ExecBatch::Rows(Batch::new(schema, kept))));
                    }
                }
            }
        }
    }
}
