//! The fused apply operator — the heart of the execution engine.
//!
//! Implements the paper's two transformation rules at run time:
//!
//! * **Rule I** (Fig. 3): the operator appends UDF output columns to each
//!   input row (cross-apply semantics: a detector's k detections fan a frame
//!   out into k rows; zero detections drop the frame).
//! * **Rule II** (Fig. 4): for each input tuple the operator walks the
//!   reuse *segments* — probing materialized views first (the LEFT OUTER
//!   JOIN read), then evaluating the fallback model only for tuples whose
//!   probe came back NULL (the conditional APPLY's pass-through guard), and
//!   finally appending fresh results to the fallback's view (STORE).
//!
//! The FunCache baseline routes through the same operator with a hash-keyed
//! in-memory cache instead of views, paying the per-invocation hashing cost.
//!
//! Reuse results flow through as `Arc<[Row]>` end to end: a probe hit, a
//! cache hit, and a STORE append all share one allocation with the store —
//! rows are only copied at the final cross-apply join that builds output
//! tuples. Large batches fan UDF evaluation and view probes out to the
//! persistent [`WorkerPool`]; every simulated-cost charge stays on the
//! caller thread, so the `CostBreakdown` is bit-identical with or without
//! parallelism.

use std::sync::Arc;

use eva_common::hash::xxhash64;
use eva_common::{
    BBox, Batch, CostCategory, EvaError, ExecBatch, Failpoint, FireRule, FrameId, OpId, Result,
    Row, Schema, SpanKind, ViewId,
};
use eva_expr::Expr;
use eva_planner::{ApplyReuse, ApplySpec, Segment};
use eva_storage::{StorageEngine, ViewKey};
use eva_udf::{SimUdf, UdfEvalContext};

use crate::context::ExecCtx;
use crate::ops::{into_rows, BoxedOp, Operator};

/// The fused probe/evaluate/store apply.
pub struct ApplyOp {
    input: BoxedOp,
    spec: ApplySpec,
    schema: Arc<Schema>,
    frame_idx: usize,
    bbox_idx: Option<usize>,
    /// Plan-node id the operator's probe/UDF counters are attributed to
    /// ([`OpId::UNSET`] outside a planned query, e.g. in unit tests).
    op_id: OpId,
}

impl ApplyOp {
    /// Build, resolving argument columns against the input schema.
    pub fn new(input: BoxedOp, spec: ApplySpec, schema: Arc<Schema>) -> Result<ApplyOp> {
        let in_schema = input.schema();
        let col_idx = |e: &Expr| -> Result<usize> {
            match e {
                Expr::Column(c) => in_schema
                    .index_of(c)
                    .ok_or_else(|| EvaError::Exec(format!("unknown apply argument '{c}'"))),
                other => Err(EvaError::Exec(format!(
                    "apply arguments must be columns, got '{other}'"
                ))),
            }
        };
        let frame_idx = col_idx(
            spec.args
                .first()
                .ok_or_else(|| EvaError::Exec("apply needs a frame argument".into()))?,
        )?;
        let bbox_idx = match spec.args.get(1) {
            Some(e) => Some(col_idx(e)?),
            None => None,
        };
        Ok(ApplyOp {
            input,
            spec,
            schema,
            frame_idx,
            bbox_idx,
            op_id: OpId::UNSET,
        })
    }

    /// Attribute this operator's counters to a plan node id.
    pub fn with_op_id(mut self, id: OpId) -> ApplyOp {
        self.op_id = id;
        self
    }

    fn key_of(&self, row: &Row) -> Result<(FrameId, Option<BBox>, ViewKey)> {
        let frame = FrameId(row[self.frame_idx].as_int()? as u64);
        match self.bbox_idx {
            Some(i) => {
                let b = row[i].as_bbox()?;
                Ok((frame, Some(b), ViewKey::frame_box(frame, &b)))
            }
            None => Ok((frame, None, ViewKey::frame(frame))),
        }
    }

    /// Stable identity of one UDF input, folded into keyed failpoint
    /// decisions. Derived from the logical key (frame + box), never from
    /// evaluation order or batch position.
    fn retry_key(frame: FrameId, bbox: Option<BBox>) -> u64 {
        match bbox {
            None => frame.raw(),
            Some(b) => {
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&frame.raw().to_le_bytes());
                for (i, k) in b.key().iter().enumerate() {
                    buf[8 + 2 * i..10 + 2 * i].copy_from_slice(&k.to_le_bytes());
                }
                xxhash64(&buf, 0)
            }
        }
    }

    /// Deterministic transient-failure model (the `udf_transient` failpoint):
    /// decide per input *key* how many injected failures this evaluation
    /// suffers, charge the exponential retry backoff to the clock, and bump
    /// the retry counters — all on the caller thread *before* any worker-pool
    /// fan-out, so the failure set and every charge are
    /// scheduling-independent and the parallel == serial `CostBreakdown`
    /// identity survives injected faults.
    ///
    /// Returns `Err` when an input keeps failing past the retry budget.
    fn charge_transient_failures<I>(
        &self,
        ctx: &ExecCtx<'_>,
        udf_name: &str,
        inputs: I,
    ) -> Result<()>
    where
        I: IntoIterator<Item = (FrameId, Option<BBox>)>,
    {
        let fp = ctx.storage.failpoints();
        if !matches!(fp.rule(Failpoint::UdfTransient), FireRule::Keyed { .. }) {
            return Ok(());
        }
        let budget = ctx.config.udf_retry_budget;
        let base = ctx.config.udf_retry_backoff_ms;
        let mut retries = 0u64;
        let mut backoff = 0.0f64;
        let mut exhausted: Option<FrameId> = None;
        for (frame, bbox) in inputs {
            let key = Self::retry_key(frame, bbox);
            let mut fails = 0u32;
            while fails <= budget && fp.should_fail_keyed(Failpoint::UdfTransient, key, fails) {
                fails += 1;
            }
            // Retry k (1-based) backs off base·2^(k−1); `sleeps` retries cost
            // base·(2^sleeps − 1) in total. `fails > budget` means even the
            // last retry failed — the sleeps happened, then we give up.
            let sleeps = fails.min(budget);
            backoff += base * ((1u64 << sleeps.min(62)) - 1) as f64;
            retries += sleeps as u64;
            if fails > budget {
                exhausted = Some(frame);
                break;
            }
        }
        if backoff > 0.0 {
            ctx.clock.charge(CostCategory::Apply, backoff);
        }
        if let Some(frame) = exhausted {
            ctx.metrics().record_udf_retries(retries, 1);
            // A retry-budget exhaustion feeds the circuit breaker's
            // consecutive-failure streak (caller thread, deterministic).
            if let Some(b) = ctx.breaker {
                b.record_exhaustion(ctx.clock, ctx.metrics());
            }
            let last_backoff_ms = if budget == 0 {
                0.0
            } else {
                base * (1u64 << (budget - 1).min(62)) as f64
            };
            return Err(EvaError::Exec(format!(
                "udf '{udf_name}' kept failing transiently on frame {} after {} attempts \
                 (retry budget {budget}, last backoff {last_backoff_ms}ms)",
                frame.raw(),
                budget as u64 + 1,
            )));
        }
        if retries > 0 {
            ctx.metrics().record_udf_retries(retries, 0);
        }
        Ok(())
    }

    /// Gate one evaluation site on the UDF circuit breaker (when the
    /// session wired one in): fail fast while it is open, let the half-open
    /// probe through once the SimClock cooldown elapses.
    fn breaker_check(&self, ctx: &ExecCtx<'_>) -> Result<()> {
        match ctx.breaker {
            Some(b) => b.check(ctx.clock, ctx.metrics()),
            None => Ok(()),
        }
    }

    /// Report a successful evaluation to the breaker: closes a half-open
    /// probe and resets the consecutive-exhaustion streak.
    fn breaker_success(&self, ctx: &ExecCtx<'_>) {
        if let Some(b) = ctx.breaker {
            b.record_success();
        }
    }

    /// Evaluate the model on the rows at `miss_idx`, fanning large batches
    /// out to the worker pool; charges the simulated cost and stats on the
    /// caller's thread to keep the clock deterministic.
    fn eval_rows(
        &self,
        ctx: &ExecCtx<'_>,
        udf: &Arc<dyn SimUdf>,
        inputs: &[(usize, FrameId, Option<BBox>)],
    ) -> Result<Vec<(usize, Vec<Row>)>> {
        let threshold = ctx.config.parallel_eval_threshold;
        if threshold == 0 || inputs.len() < threshold {
            let mut out = Vec::with_capacity(inputs.len());
            for (idx, frame, bbox) in inputs {
                let rows = udf.eval(&UdfEvalContext {
                    dataset: &ctx.dataset,
                    frame: *frame,
                    bbox: *bbox,
                })?;
                out.push((*idx, rows));
            }
            return Ok(out);
        }
        // Parallel wall-clock evaluation on the persistent pool; chunk
        // results come back in submission order, so the merged list keeps
        // input order and downstream bookkeeping stays deterministic.
        let pool = ctx.pool();
        let chunk_size = inputs.len().div_ceil(pool.n_workers());
        type EvalChunk = Result<Vec<(usize, Vec<Row>)>>;
        let tasks: Vec<Box<dyn FnOnce() -> EvalChunk + Send>> = inputs
            .chunks(chunk_size)
            .map(|chunk| {
                let chunk = chunk.to_vec();
                let udf = Arc::clone(udf);
                let dataset = Arc::clone(&ctx.dataset);
                Box::new(move || {
                    let mut out = Vec::with_capacity(chunk.len());
                    for (idx, frame, bbox) in chunk {
                        let rows = udf.eval(&UdfEvalContext {
                            dataset: &dataset,
                            frame,
                            bbox,
                        })?;
                        out.push((idx, rows));
                    }
                    Ok(out)
                }) as Box<dyn FnOnce() -> EvalChunk + Send>
            })
            .collect();
        let mut merged = Vec::with_capacity(inputs.len());
        for chunk in pool.run(tasks) {
            merged.extend(chunk?);
        }
        Ok(merged)
    }

    /// Probe a view for a batch of keys, fanning large batches out to the
    /// worker pool. Workers probe without a clock; the caller charges the
    /// summed row count once, which is bit-identical to the serial charge.
    fn probe_view(
        &self,
        ctx: &ExecCtx<'_>,
        view: ViewId,
        keys: &[ViewKey],
    ) -> Result<Vec<Option<Arc<[Row]>>>> {
        let threshold = ctx.config.parallel_probe_threshold;
        if threshold == 0 || keys.len() < threshold {
            return ctx.storage.view_probe(view, keys, ctx.clock);
        }
        let pool = ctx.pool();
        let chunk_size = keys.len().div_ceil(pool.n_workers());
        type ProbeChunk = Result<(Vec<Option<Arc<[Row]>>>, usize)>;
        let tasks: Vec<Box<dyn FnOnce() -> ProbeChunk + Send>> = keys
            .chunks(chunk_size)
            .map(|chunk| {
                let chunk = chunk.to_vec();
                let storage: StorageEngine = ctx.storage.clone();
                Box::new(move || storage.view_probe_uncharged(view, &chunk))
                    as Box<dyn FnOnce() -> ProbeChunk + Send>
            })
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        let mut rows_read = 0usize;
        for chunk in pool.run(tasks) {
            let (part, read) = chunk?;
            rows_read += read;
            out.extend(part);
        }
        ctx.storage.charge_view_read(rows_read, ctx.clock);
        Ok(out)
    }

    fn process_views(
        &self,
        ctx: &ExecCtx<'_>,
        batch: &Batch,
        segments: &[Segment],
        store: bool,
    ) -> Result<Vec<Option<Arc<[Row]>>>> {
        // A degraded query stops growing materialized state: fresh UDF
        // results still serve the query but are no longer appended to views
        // (and the session drops the pending coverage commits, so partial
        // appends are never claimed). Deterministic: the degradation point
        // is itself deterministic.
        let store = store && !ctx.governor.is_degraded();
        let n = batch.len();
        let mut results: Vec<Option<Arc<[Row]>>> = vec![None; n];
        let mut keys = Vec::with_capacity(n);
        for row in batch.rows() {
            keys.push(self.key_of(row)?);
        }

        let mut unresolved: Vec<usize> = (0..n).collect();
        for seg in segments {
            if unresolved.is_empty() {
                break;
            }
            // Probe this segment's view for unresolved rows. One *probe* is
            // counted per row attempted against the segment (the fuzzy
            // lookup below is a second phase of the same probe, not a new
            // one), so `probes == hits + misses` holds by construction.
            if let Some(view) = seg.view {
                let probes = unresolved.len() as u64;
                let mut exact_hits = 0u64;
                let probe_started = std::time::Instant::now();
                let probe_clock = ctx.clock.snapshot();
                let probe_keys: Vec<ViewKey> = unresolved.iter().map(|&i| keys[i].2).collect();
                let mut probed = self.probe_view(ctx, view, &probe_keys)?;
                let mut still = Vec::with_capacity(unresolved.len());
                for (pos, &i) in unresolved.iter().enumerate() {
                    match probed[pos].take() {
                        Some(rows) => {
                            ctx.stats.record_reuse(
                                &seg.udf.name,
                                keys[i].2,
                                seg.udf.cost_ms.unwrap_or(0.0),
                            );
                            exact_hits += 1;
                            results[i] = Some(rows);
                        }
                        None => still.push(i),
                    }
                }
                // §6 future work: fuzzy bbox matching — an exact-key miss
                // may still reuse the result of a near-identical stored box
                // (opt-in; trades exactness for more reuse).
                let mut fuzzy_hits = 0u64;
                if let (Some(min_iou), true) = (ctx.config.fuzzy_box_iou, self.bbox_idx.is_some()) {
                    let mut misses = Vec::with_capacity(still.len());
                    for &i in &still {
                        let (frame, bbox, vkey) = keys[i];
                        let hit = match bbox {
                            Some(b) => ctx
                                .storage
                                .view_probe_fuzzy(view, frame, &b, min_iou, ctx.clock)?,
                            None => None,
                        };
                        match hit {
                            Some(rows) => {
                                ctx.stats.record_reuse(
                                    &seg.udf.name,
                                    vkey,
                                    seg.udf.cost_ms.unwrap_or(0.0),
                                );
                                fuzzy_hits += 1;
                                results[i] = Some(rows);
                            }
                            None => misses.push(i),
                        }
                    }
                    still = misses;
                }
                unresolved = still;
                // One leaf span per probe batch (exact + fuzzy phases); the
                // sim delta is the view-read cost charged above.
                ctx.trace().leaf(
                    SpanKind::ViewProbe,
                    &seg.udf.name,
                    ctx.clock.snapshot().since(&probe_clock).total_ms(),
                    probe_started.elapsed().as_nanos() as u64,
                    probes,
                );
                // Every hit is a UDF call this segment avoided. Recorded on
                // the caller thread, once per probe batch.
                let hits = exact_hits + fuzzy_hits;
                ctx.metrics().record_probe_batch(probes, hits, fuzzy_hits);
                ctx.metrics().record_udf_calls(
                    0,
                    hits,
                    seg.udf.cost_ms.unwrap_or(0.0) * hits as f64,
                );
                ctx.op_stats.update(self.op_id, |s| {
                    s.probes += probes;
                    s.probe_hits += hits;
                    s.fuzzy_hits += fuzzy_hits;
                    s.udf_avoided += hits;
                });
            }
            // Evaluate the fallback for the rest.
            if seg.eval && !unresolved.is_empty() {
                let udf = ctx.registry.get(&seg.udf.impl_id)?;
                let inputs: Vec<(usize, FrameId, Option<BBox>)> = unresolved
                    .iter()
                    .map(|&i| (i, keys[i].0, keys[i].1))
                    .collect();
                let eval_started = std::time::Instant::now();
                let eval_clock = ctx.clock.snapshot();
                self.breaker_check(ctx)?;
                self.charge_transient_failures(
                    ctx,
                    &seg.udf.name,
                    inputs.iter().map(|&(_, f, b)| (f, b)),
                )?;
                let evaluated = self.eval_rows(ctx, &udf, &inputs)?;
                self.breaker_success(ctx);
                let n_eval = evaluated.len() as u64;
                ctx.metrics().record_udf_calls(n_eval, 0, 0.0);
                ctx.op_stats
                    .update(self.op_id, |s| s.udf_executed += n_eval);
                let mut appends = Vec::with_capacity(evaluated.len());
                for (i, rows) in evaluated {
                    ctx.clock.charge(CostCategory::Udf, udf.cost_ms());
                    ctx.stats
                        .record_eval(&seg.udf.name, keys[i].2, udf.cost_ms());
                    // One shared allocation serves both the STORE append and
                    // this operator's own output — no row copies.
                    let rows: Arc<[Row]> = rows.into();
                    if store && seg.view.is_some() {
                        appends.push((keys[i].2, Arc::clone(&rows)));
                    }
                    results[i] = Some(rows);
                }
                // One leaf span per eval batch: retries + evaluations + the
                // per-invocation Udf charges, before the STORE append.
                ctx.trace().leaf(
                    SpanKind::UdfEval,
                    &seg.udf.name,
                    ctx.clock.snapshot().since(&eval_clock).total_ms(),
                    eval_started.elapsed().as_nanos() as u64,
                    n_eval,
                );
                if store && !appends.is_empty() {
                    if let Some(view) = seg.view {
                        ctx.storage.view_append(view, appends, ctx.clock)?;
                    }
                }
                unresolved.clear();
            }
        }
        debug_assert!(unresolved.is_empty(), "apply left rows unresolved");
        Ok(results)
    }

    fn process_funcache(
        &self,
        ctx: &ExecCtx<'_>,
        batch: &Batch,
        udf_def: &eva_catalog::UdfDef,
    ) -> Result<Vec<Option<Arc<[Row]>>>> {
        let udf = ctx.registry.get(&udf_def.impl_id)?;
        let frame_bytes = ctx.dataset.frame_bytes();
        let lookup_started = std::time::Instant::now();
        let lookup_clock = ctx.clock.snapshot();
        let mut results = Vec::with_capacity(batch.len());
        let (mut cache_hits, mut cache_misses, mut rows_shared) = (0u64, 0u64, 0u64);
        for row in batch.rows() {
            let (frame, bbox, vkey) = self.key_of(row)?;
            // Hash the input arguments — charged for the full frame payload
            // on every invocation, the baseline's defining overhead.
            let digest = ctx.dataset.frame_digest(frame);
            let mut arg_bytes = Vec::with_capacity(digest.len() + 16);
            arg_bytes.extend_from_slice(&digest);
            let mut hashed = frame_bytes;
            if let Some(b) = bbox {
                for k in b.key() {
                    arg_bytes.extend_from_slice(&k.to_le_bytes());
                }
                hashed += 8;
            }
            ctx.clock.charge(
                CostCategory::HashInput,
                ctx.storage.cost_model().hash_cost_ms(hashed),
            );
            let key = ctx.funcache.key(&udf_def.name, &arg_bytes);
            match ctx.funcache.get(&key) {
                Some(rows) => {
                    ctx.stats.record_reuse(&udf_def.name, vkey, udf.cost_ms());
                    cache_hits += 1;
                    rows_shared += rows.len() as u64;
                    results.push(Some(rows));
                }
                None => {
                    self.breaker_check(ctx)?;
                    self.charge_transient_failures(
                        ctx,
                        &udf_def.name,
                        std::iter::once((frame, bbox)),
                    )?;
                    let rows: Arc<[Row]> = udf
                        .eval(&UdfEvalContext {
                            dataset: &ctx.dataset,
                            frame,
                            bbox,
                        })?
                        .into();
                    self.breaker_success(ctx);
                    ctx.clock.charge(CostCategory::Udf, udf.cost_ms());
                    ctx.stats.record_eval(&udf_def.name, vkey, udf.cost_ms());
                    ctx.funcache.insert(key, Arc::clone(&rows));
                    cache_misses += 1;
                    results.push(Some(rows));
                }
            }
        }
        // One leaf span per lookup batch: hashing, probes, and the misses'
        // evaluations (the baseline pays them inline).
        ctx.trace().leaf(
            SpanKind::CacheLookup,
            &udf_def.name,
            ctx.clock.snapshot().since(&lookup_clock).total_ms(),
            lookup_started.elapsed().as_nanos() as u64,
            batch.len() as u64,
        );
        // Cache hits serve their rows by Arc clone and each one avoided a
        // model invocation; charged once per batch on the caller thread.
        ctx.metrics().record_funcache(cache_hits, cache_misses);
        ctx.metrics().record_zero_copy_rows(rows_shared);
        ctx.metrics()
            .record_udf_calls(cache_misses, cache_hits, udf.cost_ms() * cache_hits as f64);
        ctx.op_stats.update(self.op_id, |s| {
            s.udf_executed += cache_misses;
            s.udf_avoided += cache_hits;
        });
        Ok(results)
    }

    fn process_plain(&self, ctx: &ExecCtx<'_>, batch: &Batch) -> Result<Vec<Option<Arc<[Row]>>>> {
        let udf_def = self
            .spec
            .fallback_udf()
            .cloned()
            .ok_or_else(|| EvaError::Exec("apply without a UDF".into()))?;
        let udf = ctx.registry.get(&udf_def.impl_id)?;
        let mut inputs = Vec::with_capacity(batch.len());
        let mut keys = Vec::with_capacity(batch.len());
        for (i, row) in batch.rows().iter().enumerate() {
            let (frame, bbox, vkey) = self.key_of(row)?;
            inputs.push((i, frame, bbox));
            keys.push(vkey);
        }
        let eval_started = std::time::Instant::now();
        let eval_clock = ctx.clock.snapshot();
        self.breaker_check(ctx)?;
        self.charge_transient_failures(ctx, &udf_def.name, inputs.iter().map(|&(_, f, b)| (f, b)))?;
        let evaluated = self.eval_rows(ctx, &udf, &inputs)?;
        self.breaker_success(ctx);
        let n_eval = evaluated.len() as u64;
        ctx.metrics().record_udf_calls(n_eval, 0, 0.0);
        ctx.op_stats
            .update(self.op_id, |s| s.udf_executed += n_eval);
        let mut results: Vec<Option<Arc<[Row]>>> = vec![None; batch.len()];
        for (i, rows) in evaluated {
            ctx.clock.charge(CostCategory::Udf, udf.cost_ms());
            ctx.stats.record_eval(&udf_def.name, keys[i], udf.cost_ms());
            results[i] = Some(rows.into());
        }
        ctx.trace().leaf(
            SpanKind::UdfEval,
            &udf_def.name,
            ctx.clock.snapshot().since(&eval_clock).total_ms(),
            eval_started.elapsed().as_nanos() as u64,
            n_eval,
        );
        Ok(results)
    }
}

impl Operator for ApplyOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        loop {
            let Some(batch) = self.input.next(ctx)? else {
                return Ok(None);
            };
            // Cooperative governance check at the operator's batch boundary
            // — before the batch's UDF work, where cancellation saves the
            // most simulated (and real) time.
            ctx.governor.check(ctx.clock)?;
            // UDF dispatch and the cross-apply join are row-oriented; this
            // is the planned pivot point off the columnar hot path.
            let batch = into_rows(ctx, batch);
            ctx.clock.charge(
                CostCategory::Apply,
                ctx.config.apply_overhead_ms * batch.len() as f64,
            );
            let results = match &self.spec.reuse {
                ApplyReuse::None { .. } => self.process_plain(ctx, &batch)?,
                ApplyReuse::FunCache { udf } => self.process_funcache(ctx, &batch, udf)?,
                ApplyReuse::Views { segments, store } => {
                    self.process_views(ctx, &batch, segments, *store)?
                }
            };
            // Cross-apply join: input row × each output row. This is the
            // single place reuse results are copied — into fresh output
            // tuples.
            let n_out_cols = self.spec.output.len();
            let mut out_rows: Vec<Row> = Vec::new();
            for (row, result) in batch.rows().iter().zip(results) {
                let Some(udf_rows) = result else { continue };
                for udf_row in udf_rows.iter() {
                    debug_assert_eq!(udf_row.len(), n_out_cols);
                    let mut joined = Vec::with_capacity(row.len() + n_out_cols);
                    joined.extend(row.iter().cloned());
                    joined.extend(udf_row.iter().cloned());
                    out_rows.push(joined);
                }
            }
            if !out_rows.is_empty() {
                return Ok(Some(ExecBatch::Rows(Batch::new(
                    Arc::clone(&self.schema),
                    out_rows,
                ))));
            }
        }
    }
}
