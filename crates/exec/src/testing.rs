//! Shared fixtures for operator unit tests.
#![cfg(test)]

use std::sync::Arc;

use eva_common::{Batch, ColumnarBatch, ExecBatch, Result, Schema, SimClock, Value};
use eva_storage::StorageEngine;
use eva_udf::registry::install_standard_zoo;
use eva_udf::{InvocationStats, UdfRegistry};
use eva_video::generator::generate;
use eva_video::{VideoConfig, VideoDataset};

use crate::config::ExecConfig;
use crate::context::{ExecCtx, OpStatsCollector};
use crate::funcache::FunCacheTable;
use crate::ops::{BoxedOp, Operator};

/// Everything an operator test needs, with owned lifetimes.
pub struct TestEnv {
    pub storage: StorageEngine,
    pub registry: UdfRegistry,
    pub stats: InvocationStats,
    pub clock: SimClock,
    pub dataset: Arc<VideoDataset>,
    pub funcache: FunCacheTable,
    pub op_stats: OpStatsCollector,
    pub catalog: eva_catalog::Catalog,
}

impl TestEnv {
    pub fn new(seed: u64, n_frames: u64) -> TestEnv {
        let storage = StorageEngine::new();
        let registry = UdfRegistry::new();
        let catalog = eva_catalog::Catalog::new();
        install_standard_zoo(&registry, &catalog).expect("zoo install");
        let dataset = storage.load_dataset(generate(VideoConfig {
            name: "t".into(),
            n_frames,
            width: 100,
            height: 60,
            fps: 25.0,
            target_density: 3.0,
            person_fraction: 0.0,
            seed,
        }));
        TestEnv {
            storage,
            registry,
            stats: InvocationStats::new(),
            clock: SimClock::new(),
            dataset,
            funcache: FunCacheTable::new(),
            op_stats: OpStatsCollector::new(),
            catalog,
        }
    }

    pub fn ctx(&self) -> ExecCtx<'_> {
        self.ctx_with(ExecConfig {
            batch_size: 16,
            ..ExecConfig::default()
        })
    }

    /// Context with explicit tunables (threshold/parallelism tests).
    pub fn ctx_with(&self, config: ExecConfig) -> ExecCtx<'_> {
        ExecCtx {
            storage: &self.storage,
            registry: &self.registry,
            stats: &self.stats,
            clock: &self.clock,
            dataset: Arc::clone(&self.dataset),
            funcache: &self.funcache,
            op_stats: &self.op_stats,
            config,
            pool: None,
            governor: eva_common::QueryGovernor::ungoverned(),
            breaker: None,
        }
    }

    /// Drain an operator to completion (pivoting columnar batches like the
    /// engine's output collection does).
    pub fn drain(&self, mut op: BoxedOp) -> Result<Batch> {
        let ctx = self.ctx();
        let mut out = Batch::empty(op.schema());
        while let Some(b) = op.next(&ctx)? {
            out.extend(crate::ops::into_rows(&ctx, b))?;
        }
        Ok(out)
    }
}

/// A static in-memory source operator for testing downstream operators.
pub struct ValuesOp {
    schema: Arc<Schema>,
    batches: Vec<Batch>,
}

impl ValuesOp {
    pub fn new(schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> ValuesOp {
        let batch = Batch::new(Arc::clone(&schema), rows);
        ValuesOp {
            schema,
            batches: vec![batch],
        }
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        Ok(self.batches.pop().map(ExecBatch::Rows))
    }
}

/// [`ValuesOp`]'s columnar twin: the same rows pivoted up front, emitted as
/// one columnar batch — lets tests drive the vectorized operator paths with
/// arbitrary (including NULL-bearing) data.
pub struct ColumnarValuesOp {
    schema: Arc<Schema>,
    batches: Vec<ColumnarBatch>,
}

impl ColumnarValuesOp {
    pub fn new(schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> ColumnarValuesOp {
        let batch = ColumnarBatch::from_batch(&Batch::new(Arc::clone(&schema), rows));
        ColumnarValuesOp {
            schema,
            batches: vec![batch],
        }
    }
}

impl Operator for ColumnarValuesOp {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ExecBatch>> {
        Ok(self.batches.pop().map(ExecBatch::Columnar))
    }
}
