//! Unit tests for the physical operators.
#![cfg(test)]

use std::sync::Arc;

use eva_common::{CostCategory, DataType, Field, FrameId, Schema, Value};
use eva_expr::{AggFunc, Expr};
use eva_planner::{ApplyReuse, ApplySpec, Segment};
use eva_storage::{ViewKey, ViewKeyKind};

use crate::ops::aggregate::AggregateOp;
use crate::ops::apply::ApplyOp;
use crate::ops::filter::FilterOp;
use crate::ops::project::ProjectOp;
use crate::ops::scan::ScanFramesOp;
use crate::ops::sort_limit::{LimitOp, SortOp};
use crate::ops::BoxedOp;
use crate::testing::{ColumnarValuesOp, TestEnv, ValuesOp};

fn int_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap(),
    )
}

fn values(rows: Vec<(i64, &str)>) -> ValuesOp {
    ValuesOp::new(
        int_schema(),
        rows.into_iter()
            .map(|(a, b)| vec![Value::Int(a), Value::from(b)])
            .collect(),
    )
}

#[test]
fn scan_batches_and_charges() {
    let env = TestEnv::new(1, 50);
    let scan = ScanFramesOp::new(
        "t".into(),
        (5, 45),
        Arc::new(eva_storage::engine::video_table_schema()),
    );
    let out = env.drain(Box::new(scan)).unwrap();
    assert_eq!(out.len(), 40);
    assert_eq!(out.value(0, "id").unwrap(), &Value::Int(5));
    let read = env.clock.snapshot().get(CostCategory::ReadVideo);
    assert!((read - 40.0 * 1.8).abs() < 1e-9);
}

#[test]
fn filter_keeps_matching_rows_only() {
    let env = TestEnv::new(2, 10);
    let src = values(vec![(1, "x"), (5, "y"), (9, "x")]);
    let op = FilterOp::new(Box::new(src), Expr::col("b").eq_val("x"));
    let out = env.drain(Box::new(op)).unwrap();
    assert_eq!(out.len(), 2);
    assert!(out.rows().iter().all(|r| r[1] == Value::from("x")));
}

#[test]
fn project_computes_expressions() {
    let env = TestEnv::new(3, 10);
    let src = values(vec![(2, "x"), (7, "y")]);
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("is_small", DataType::Bool),
            Field::new("b", DataType::Str),
        ])
        .unwrap(),
    );
    let op = ProjectOp::new(
        Box::new(src),
        vec![
            (Expr::col("a").lt(5), "is_small".into()),
            (Expr::col("b"), "b".into()),
        ],
        schema,
    );
    let out = env.drain(Box::new(op)).unwrap();
    assert_eq!(out.value(0, "is_small").unwrap(), &Value::Bool(true));
    assert_eq!(out.value(1, "is_small").unwrap(), &Value::Bool(false));
}

#[test]
fn aggregate_group_count_sum_min_max_avg() {
    let env = TestEnv::new(4, 10);
    let src = values(vec![(1, "x"), (3, "x"), (10, "y")]);
    let schema = Arc::new(
        Schema::new(vec![
            Field::new("b", DataType::Str),
            Field::new("n", DataType::Int),
            Field::new("s", DataType::Float),
            Field::new("mn", DataType::Float),
            Field::new("mx", DataType::Float),
            Field::new("av", DataType::Float),
        ])
        .unwrap(),
    );
    let op = AggregateOp::new(
        Box::new(src),
        vec!["b".into()],
        vec![
            (AggFunc::Count, None, "n".into()),
            (AggFunc::Sum, Some(Expr::col("a")), "s".into()),
            (AggFunc::Min, Some(Expr::col("a")), "mn".into()),
            (AggFunc::Max, Some(Expr::col("a")), "mx".into()),
            (AggFunc::Avg, Some(Expr::col("a")), "av".into()),
        ],
        schema,
    );
    let out = env.drain(Box::new(op)).unwrap();
    assert_eq!(out.len(), 2);
    // Groups sorted by key bytes: "x" < "y".
    assert_eq!(out.value(0, "b").unwrap(), &Value::from("x"));
    assert_eq!(out.value(0, "n").unwrap(), &Value::Int(2));
    assert_eq!(out.value(0, "s").unwrap(), &Value::Float(4.0));
    assert_eq!(out.value(0, "mn").unwrap(), &Value::Int(1));
    assert_eq!(out.value(0, "mx").unwrap(), &Value::Int(3));
    assert_eq!(out.value(0, "av").unwrap(), &Value::Float(2.0));
    assert_eq!(out.value(1, "n").unwrap(), &Value::Int(1));
}

#[test]
fn aggregate_without_groups_yields_single_row() {
    let env = TestEnv::new(5, 10);
    let src = values(vec![(1, "x"), (2, "y")]);
    let schema = Arc::new(Schema::new(vec![Field::new("n", DataType::Int)]).unwrap());
    let op = AggregateOp::new(
        Box::new(src),
        vec![],
        vec![(AggFunc::Count, None, "n".into())],
        schema,
    );
    let out = env.drain(Box::new(op)).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.value(0, "n").unwrap(), &Value::Int(2));
}

#[test]
fn sort_and_limit() {
    let env = TestEnv::new(6, 10);
    let src = values(vec![(5, "c"), (1, "a"), (9, "b")]);
    let sorted = SortOp::new(Box::new(src), vec![("a".into(), true)]);
    let limited = LimitOp::new(Box::new(sorted), 2);
    let out = env.drain(Box::new(limited)).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.value(0, "a").unwrap(), &Value::Int(9));
    assert_eq!(out.value(1, "a").unwrap(), &Value::Int(5));
}

// ---------------------------------------------------------------------------
// Columnar == row identity
// ---------------------------------------------------------------------------

/// NULL-bearing rows that force `Mixed` column storage, so the identity
/// tests cover the validity-bitmap paths as well as the typed fast paths.
fn null_rows() -> Vec<Vec<Value>> {
    vec![
        vec![Value::Int(1), Value::from("x")],
        vec![Value::Null, Value::from("y")],
        vec![Value::Int(2), Value::Null],
        vec![Value::Int(9), Value::from("x")],
        vec![Value::Int(4), Value::from("x")],
        vec![Value::Int(7), Value::from("y")],
    ]
}

fn source(columnar: bool) -> BoxedOp {
    if columnar {
        Box::new(ColumnarValuesOp::new(int_schema(), null_rows()))
    } else {
        Box::new(ValuesOp::new(int_schema(), null_rows()))
    }
}

/// The vectorized filter/project path must produce bit-identical rows to
/// the row-at-a-time path, including NULL predicate results (unknown
/// rejects the row) and NULLs surviving into projected output.
#[test]
fn columnar_filter_project_matches_row_path() {
    let run = |columnar: bool| {
        let env = TestEnv::new(20, 4);
        let filt = FilterOp::new(source(columnar), Expr::col("a").lt(8));
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("b", DataType::Str),
                Field::new("small", DataType::Bool),
            ])
            .unwrap(),
        );
        let proj = ProjectOp::new(
            Box::new(filt),
            vec![
                (Expr::col("b"), "b".into()),
                (Expr::col("a").lt(5), "small".into()),
            ],
            schema,
        );
        env.drain(Box::new(proj)).unwrap()
    };
    let row = run(false);
    let col = run(true);
    assert_eq!(row.rows(), col.rows());
    assert_eq!(row.len(), 4, "NULL `a` is unknown and filtered out");
    // The NULL `b` cell survives projection intact.
    assert!(row.rows().iter().any(|r| r[0] == Value::Null));
}

/// Aggregation over a columnar source must group, sort and fold exactly
/// like the row path — group keys are encoded with the same byte encoding
/// on both sides, and NULL arguments are skipped by SUM/MIN/MAX/AVG.
#[test]
fn columnar_aggregate_matches_row_path() {
    let run = |columnar: bool| {
        let env = TestEnv::new(21, 4);
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("b", DataType::Str),
                Field::new("n", DataType::Int),
                Field::new("s", DataType::Float),
                Field::new("mn", DataType::Float),
                Field::new("mx", DataType::Float),
                Field::new("av", DataType::Float),
            ])
            .unwrap(),
        );
        let op = AggregateOp::new(
            source(columnar),
            vec!["b".into()],
            vec![
                (AggFunc::Count, None, "n".into()),
                (AggFunc::Sum, Some(Expr::col("a")), "s".into()),
                (AggFunc::Min, Some(Expr::col("a")), "mn".into()),
                (AggFunc::Max, Some(Expr::col("a")), "mx".into()),
                (AggFunc::Avg, Some(Expr::col("a")), "av".into()),
            ],
            schema,
        );
        env.drain(Box::new(op)).unwrap()
    };
    let row = run(false);
    let col = run(true);
    assert_eq!(row.rows(), col.rows());
    // Three groups: NULL, "x", "y" (NULL key bytes sort first).
    assert_eq!(row.len(), 3);
    assert_eq!(row.value(0, "b").unwrap(), &Value::Null);
    assert_eq!(row.value(1, "b").unwrap(), &Value::from("x"));
    // Group "x" holds a = {1, 9, 4} → sum 14.
    assert_eq!(row.value(1, "s").unwrap(), &Value::Float(14.0));
}

/// LIMIT on a columnar batch truncates through the selection vector
/// without pivoting to rows.
#[test]
fn limit_truncates_columnar_batches_via_selection() {
    let env = TestEnv::new(22, 4);
    let src = ColumnarValuesOp::new(int_schema(), null_rows());
    let op = LimitOp::new(Box::new(src), 2);
    let out = env.drain(Box::new(op)).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out.value(0, "a").unwrap(), &Value::Int(1));
    assert_eq!(out.value(1, "a").unwrap(), &Value::Null);
    // Only the two surviving rows were pivoted at the drain boundary.
    assert_eq!(env.storage.metrics().snapshot().rows_pivoted, 2);
}

/// `rows_pivoted` is the observable cost of leaving the columnar path: a
/// columnar flow charges it at the drain boundary, a row flow never does.
#[test]
fn pivot_counter_charges_only_columnar_flows() {
    let env = TestEnv::new(23, 4);
    let out = env.drain(source(true)).unwrap();
    assert_eq!(out.len(), 6);
    assert_eq!(env.storage.metrics().snapshot().rows_pivoted, 6);

    let env = TestEnv::new(23, 4);
    env.drain(source(false)).unwrap();
    assert_eq!(env.storage.metrics().snapshot().rows_pivoted, 0);
}

// ---------------------------------------------------------------------------
// The fused apply operator
// ---------------------------------------------------------------------------

fn frame_source(env: &TestEnv, n: u64) -> Box<ScanFramesOp> {
    let _ = env;
    Box::new(ScanFramesOp::new(
        "t".into(),
        (0, n),
        Arc::new(eva_storage::engine::video_table_schema()),
    ))
}

fn detector_spec(env: &TestEnv, reuse: ApplyReuse) -> ApplySpec {
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    ApplySpec {
        display_name: def.name.clone(),
        args: vec![Expr::col("frame")],
        reuse,
        output: Arc::new(def.output.clone()),
    }
}

fn apply_schema(env: &TestEnv) -> Arc<Schema> {
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    Arc::new(eva_storage::engine::video_table_schema().join(&def.output))
}

#[test]
fn apply_plain_mode_fans_out_detections() {
    let env = TestEnv::new(7, 20);
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let spec = detector_spec(&env, ApplyReuse::None { udf: def.clone() });
    let op = ApplyOp::new(frame_source(&env, 20), spec, apply_schema(&env)).unwrap();
    let out = env.drain(Box::new(op)).unwrap();
    assert!(out.len() > 20, "multiple detections per frame expected");
    // Every output row carries the original frame columns plus outputs.
    assert_eq!(out.schema().len(), 6);
    let counters = env.stats.get("fasterrcnn_resnet50");
    assert_eq!(counters.total_invocations, 20);
    assert_eq!(counters.reused_invocations, 0);
    let udf_ms = env.clock.snapshot().get(CostCategory::Udf);
    assert!((udf_ms - 20.0 * 99.0).abs() < 1e-6);
}

#[test]
fn apply_views_mode_probes_then_stores() {
    let env = TestEnv::new(8, 20);
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let view = env
        .storage
        .create_view("det", ViewKeyKind::Frame, Arc::new(def.output.clone()));
    // Pre-materialize frames 0..10 with sentinel rows.
    let entries: Vec<_> = (0..10u64)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![
                    Value::from("sentinel"),
                    Value::from(eva_common::BBox::new(0.0, 0.0, 0.5, 0.5)),
                    Value::Float(1.0),
                ]]
                .into(),
            )
        })
        .collect();
    env.storage.view_append(view, entries, &env.clock).unwrap();

    let spec = detector_spec(
        &env,
        ApplyReuse::Views {
            segments: vec![Segment {
                udf: def.clone(),
                view: Some(view),
                eval: true,
            }],
            store: true,
        },
    );
    let op = ApplyOp::new(frame_source(&env, 20), spec, apply_schema(&env)).unwrap();
    let out = env.drain(Box::new(op)).unwrap();

    // Frames 0..10 produced the sentinel; 10..20 fresh detections.
    let sentinels = out
        .rows()
        .iter()
        .filter(|r| r[3] == Value::from("sentinel"))
        .count();
    assert_eq!(sentinels, 10);
    let counters = env.stats.get("fasterrcnn_resnet50");
    assert_eq!(counters.reused_invocations, 10);
    assert_eq!(counters.total_invocations, 20);
    // STORE appended the fresh frames: the view now covers all 20.
    assert_eq!(env.storage.view_n_keys(view).unwrap(), 20);
    // Re-running reuses everything.
    let spec = detector_spec(
        &env,
        ApplyReuse::Views {
            segments: vec![Segment {
                udf: def,
                view: Some(view),
                eval: true,
            }],
            store: true,
        },
    );
    let op = ApplyOp::new(frame_source(&env, 20), spec, apply_schema(&env)).unwrap();
    env.drain(Box::new(op)).unwrap();
    let counters = env.stats.get("fasterrcnn_resnet50");
    assert_eq!(counters.reused_invocations, 30);
}

#[test]
fn apply_multi_segment_probes_in_order() {
    let env = TestEnv::new(9, 12);
    let rcnn101 = env.catalog.udf("fasterrcnn_resnet101").unwrap();
    let yolo = env.catalog.udf("yolo_tiny").unwrap();
    let schema_out = Arc::new(rcnn101.output.clone());
    let v101 = env
        .storage
        .create_view("rcnn101", ViewKeyKind::Frame, Arc::clone(&schema_out));
    // rcnn101 view covers frames 0..6.
    let entries: Vec<_> = (0..6u64)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![
                    Value::from("from101"),
                    Value::from(eva_common::BBox::new(0.0, 0.0, 0.2, 0.2)),
                    Value::Float(0.9),
                ]]
                .into(),
            )
        })
        .collect();
    env.storage.view_append(v101, entries, &env.clock).unwrap();
    let vy = env
        .storage
        .create_view("yolo", ViewKeyKind::Frame, Arc::clone(&schema_out));

    let spec = ApplySpec {
        display_name: "objectdetector".into(),
        args: vec![Expr::col("frame")],
        reuse: ApplyReuse::Views {
            segments: vec![
                Segment {
                    udf: rcnn101.clone(),
                    view: Some(v101),
                    eval: false, // view-only (Algorithm 2 ReadView choice)
                },
                Segment {
                    udf: yolo.clone(),
                    view: Some(vy),
                    eval: true, // fallback
                },
            ],
            store: true,
        },
        output: Arc::clone(&schema_out),
    };
    let op = ApplyOp::new(frame_source(&env, 12), spec, apply_schema(&env)).unwrap();
    let out = env.drain(Box::new(op)).unwrap();
    let from101 = out
        .rows()
        .iter()
        .filter(|r| r[3] == Value::from("from101"))
        .count();
    assert_eq!(from101, 6, "covered frames come from the 101 view");
    assert_eq!(env.stats.get("fasterrcnn_resnet101").reused_invocations, 6);
    let y = env.stats.get("yolo_tiny");
    assert_eq!(y.total_invocations - y.reused_invocations, 6);
    // Fresh yolo results stored into yolo's own view, not rcnn101's.
    assert_eq!(env.storage.view_n_keys(vy).unwrap(), 6);
    assert_eq!(env.storage.view_n_keys(v101).unwrap(), 6);
}

#[test]
fn apply_funcache_mode_hits_and_charges_hash() {
    let env = TestEnv::new(10, 10);
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let spec = detector_spec(&env, ApplyReuse::FunCache { udf: def });
    let op = ApplyOp::new(frame_source(&env, 10), spec.clone(), apply_schema(&env)).unwrap();
    env.drain(Box::new(op)).unwrap();
    let hash1 = env.clock.snapshot().get(CostCategory::HashInput);
    assert!(hash1 > 0.0);
    assert_eq!(env.funcache.len(), 10);

    let op = ApplyOp::new(frame_source(&env, 10), spec, apply_schema(&env)).unwrap();
    env.drain(Box::new(op)).unwrap();
    let c = env.stats.get("fasterrcnn_resnet50");
    assert_eq!(c.reused_invocations, 10);
    // Hashing is paid again on the hit path.
    let hash2 = env.clock.snapshot().get(CostCategory::HashInput);
    assert!((hash2 - 2.0 * hash1).abs() < 1e-6);
}

#[test]
fn apply_box_level_uses_frame_box_keys() {
    let env = TestEnv::new(11, 6);
    let det = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let ct = env.catalog.udf("cartype").unwrap();
    // Build detector rows first (plain), then cartype with views+store.
    let det_spec = detector_spec(&env, ApplyReuse::None { udf: det });
    let det_op = ApplyOp::new(frame_source(&env, 6), det_spec, apply_schema(&env)).unwrap();

    let view = env.storage.create_view(
        "cartype",
        ViewKeyKind::FrameBox,
        Arc::new(ct.output.clone()),
    );
    let ct_schema = Arc::new(apply_schema(&env).join(&ct.output));
    let ct_spec = ApplySpec {
        display_name: "cartype".into(),
        args: vec![Expr::col("frame"), Expr::col("bbox")],
        reuse: ApplyReuse::Views {
            segments: vec![Segment {
                udf: ct,
                view: Some(view),
                eval: true,
            }],
            store: true,
        },
        output: Arc::new(env.catalog.udf("cartype").unwrap().output.clone()),
    };
    let ct_op = ApplyOp::new(Box::new(det_op), ct_spec, ct_schema).unwrap();
    let out = env.drain(Box::new(ct_op)).unwrap();
    assert!(!out.is_empty());
    let c = env.stats.get("cartype");
    assert_eq!(c.reused_invocations, 0);
    assert_eq!(env.storage.view_n_keys(view).unwrap(), c.distinct_inputs);
    // Output column present and populated.
    let idx = out.schema().index_of("cartype").unwrap();
    assert!(out.rows().iter().all(|r| matches!(&r[idx], Value::Str(_))));
}

#[test]
fn apply_rejects_non_column_args() {
    let env = TestEnv::new(12, 5);
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let spec = ApplySpec {
        display_name: "bad".into(),
        args: vec![Expr::lit(1)],
        reuse: ApplyReuse::None { udf: def },
        output: Arc::new(Schema::empty()),
    };
    assert!(ApplyOp::new(frame_source(&env, 5), spec, apply_schema(&env)).is_err());
}

/// Run the standard views-mode detector query under a given config and
/// return the cost breakdown plus the drained output rows.
struct ViewsRun {
    cost: eva_common::CostBreakdown,
    rows: Vec<Vec<Value>>,
    metrics: eva_common::MetricsSnapshot,
    op_stats: std::collections::BTreeMap<eva_common::OpId, eva_common::OpStats>,
}

fn run_views_query(config: crate::config::ExecConfig) -> ViewsRun {
    run_views_query_faulty(config, &|_| {})
}

/// Like [`run_views_query`], arming failpoints on the engine before the
/// query runs (fault-injection tests).
fn run_views_query_faulty(
    config: crate::config::ExecConfig,
    arm: &dyn Fn(&eva_common::FailpointRegistry),
) -> ViewsRun {
    let env = TestEnv::new(42, 64);
    arm(env.storage.failpoints());
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let view = env
        .storage
        .create_view("det", ViewKeyKind::Frame, Arc::new(def.output.clone()));
    // Pre-materialize half the frames so both the probe-hit and the
    // evaluate-and-store paths run.
    let entries: Vec<_> = (0..32u64)
        .map(|i| {
            (
                ViewKey::frame(FrameId(i)),
                vec![vec![
                    Value::from("sentinel"),
                    Value::from(eva_common::BBox::new(0.0, 0.0, 0.5, 0.5)),
                    Value::Float(1.0),
                ]]
                .into(),
            )
        })
        .collect();
    env.storage.view_append(view, entries, &env.clock).unwrap();
    env.clock.reset();

    let spec = detector_spec(
        &env,
        ApplyReuse::Views {
            segments: vec![Segment {
                udf: def,
                view: Some(view),
                eval: true,
            }],
            store: true,
        },
    );
    let mut op: Box<dyn crate::ops::Operator> =
        Box::new(ApplyOp::new(frame_source(&env, 64), spec, apply_schema(&env)).unwrap());
    let ctx = env.ctx_with(config);
    let mut rows = Vec::new();
    while let Some(b) = op.next(&ctx).unwrap() {
        rows.extend(b.into_batch().into_rows());
    }
    ViewsRun {
        cost: env.clock.snapshot(),
        rows,
        metrics: env.storage.metrics().snapshot(),
        op_stats: env.op_stats.snapshot(),
    }
}

#[test]
fn parallel_apply_costs_are_bit_identical_to_serial() {
    let serial = crate::config::ExecConfig {
        batch_size: 64,
        parallel_eval_threshold: 0,
        parallel_probe_threshold: 0,
        ..Default::default()
    };
    let parallel = crate::config::ExecConfig {
        batch_size: 64,
        parallel_eval_threshold: 1,
        parallel_probe_threshold: 1,
        ..Default::default()
    };
    let s = run_views_query(serial);
    let p = run_views_query(parallel);
    assert_eq!(
        s.cost, p.cost,
        "worker-pool parallelism must not change the simulated cost"
    );
    assert_eq!(
        s.rows, p.rows,
        "output rows must match in content and order"
    );
    assert!(
        s.cost.get(CostCategory::ReadView) > 0.0,
        "probe path exercised"
    );
    assert!(s.cost.get(CostCategory::Udf) > 0.0, "eval path exercised");
}

/// Mirror of the cost bit-identity test for the observability layer: every
/// counter except shard-contention (which depends on thread interleaving by
/// design) must be identical whether the apply operator fans out to the
/// worker pool or runs serially — counters are charged on the caller
/// thread, like the clock.
#[test]
fn parallel_apply_metrics_are_identical_to_serial() {
    let serial = crate::config::ExecConfig {
        batch_size: 64,
        parallel_eval_threshold: 0,
        parallel_probe_threshold: 0,
        ..Default::default()
    };
    let parallel = crate::config::ExecConfig {
        batch_size: 64,
        parallel_eval_threshold: 1,
        parallel_probe_threshold: 1,
        ..Default::default()
    };
    let s = run_views_query(serial);
    let p = run_views_query(parallel);
    assert_eq!(
        s.metrics.deterministic(),
        p.metrics.deterministic(),
        "parallelism must not change any metric counter"
    );
    assert_eq!(
        s.op_stats, p.op_stats,
        "parallelism must not change per-operator stats"
    );
    // The run exercises both the probe-hit and evaluate paths, so the
    // counters are nontrivial and their invariants hold.
    let m = &s.metrics;
    assert!(m.probe_hits > 0, "{m:?}");
    assert!(m.udf_calls_executed > 0, "{m:?}");
    assert!(m.udf_calls_avoided > 0, "{m:?}");
    assert_eq!(m.probes, m.probe_hits + m.probe_misses, "{m:?}");
    assert_eq!(
        m.udf_calls_requested,
        m.udf_calls_executed + m.udf_calls_avoided,
        "{m:?}"
    );
    assert!(
        m.rows_served_zero_copy > 0,
        "probe hits serve zero-copy rows"
    );
}

// ---------------------------------------------------------------------------
// Transient-failure retry (the udf_transient failpoint)
// ---------------------------------------------------------------------------

/// Select ~40% of keys, each failing its first attempt — every selected key
/// recovers within the default retry budget of 2.
fn arm_flaky(fp: &eva_common::FailpointRegistry) {
    fp.set_seed(7);
    fp.arm(
        eva_common::Failpoint::UdfTransient,
        eva_common::FireRule::Keyed {
            prob_permille: 400,
            fails: 1,
        },
    );
}

#[test]
fn transient_udf_failures_retry_and_recover() {
    let config = crate::config::ExecConfig {
        batch_size: 64,
        ..Default::default()
    };
    let clean = run_views_query(config);
    let flaky = run_views_query_faulty(config, &arm_flaky);
    assert_eq!(
        clean.rows, flaky.rows,
        "retried evaluations must not change the answer"
    );
    assert!(flaky.metrics.udf_retries > 0, "{:?}", flaky.metrics);
    assert_eq!(flaky.metrics.udf_gave_up, 0, "{:?}", flaky.metrics);
    // Each retry backs off 5ms (base · 2^0), charged to Apply.
    let extra = flaky.cost.get(CostCategory::Apply) - clean.cost.get(CostCategory::Apply);
    let expected = flaky.metrics.udf_retries as f64 * 5.0;
    assert!(
        (extra - expected).abs() < 1e-6,
        "backoff charge {extra} != {expected}"
    );
}

#[test]
fn transient_retry_costs_are_bit_identical_parallel_vs_serial() {
    let serial = crate::config::ExecConfig {
        batch_size: 64,
        parallel_eval_threshold: 0,
        parallel_probe_threshold: 0,
        ..Default::default()
    };
    let parallel = crate::config::ExecConfig {
        batch_size: 64,
        parallel_eval_threshold: 1,
        parallel_probe_threshold: 1,
        ..Default::default()
    };
    let s = run_views_query_faulty(serial, &arm_flaky);
    let p = run_views_query_faulty(parallel, &arm_flaky);
    assert_eq!(
        s.cost, p.cost,
        "injected faults must not break the parallel == serial cost identity"
    );
    assert_eq!(s.rows, p.rows);
    assert_eq!(s.metrics.deterministic(), p.metrics.deterministic());
    assert!(s.metrics.udf_retries > 0, "faults actually injected");
}

#[test]
fn transient_udf_failure_exhausts_budget_and_errors() {
    let env = TestEnv::new(13, 8);
    env.storage.failpoints().arm(
        eva_common::Failpoint::UdfTransient,
        eva_common::FireRule::Keyed {
            prob_permille: 1000,
            fails: 10,
        },
    );
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let spec = detector_spec(&env, ApplyReuse::None { udf: def });
    let op = ApplyOp::new(frame_source(&env, 8), spec, apply_schema(&env)).unwrap();
    let err = env.drain(Box::new(op)).unwrap_err();
    assert_eq!(err.stage(), "exec");
    assert!(
        err.to_string().contains("retry budget"),
        "error names the cause: {err}"
    );
    let m = env.storage.metrics().snapshot();
    assert_eq!(m.udf_gave_up, 1, "{m:?}");
    assert_eq!(m.udf_retries, 2, "budget of 2 retries was spent: {m:?}");
}

#[test]
fn transient_failures_hit_the_funcache_miss_path_only() {
    let env = TestEnv::new(14, 12);
    arm_flaky(env.storage.failpoints());
    let def = env.catalog.udf("fasterrcnn_resnet50").unwrap();
    let spec = detector_spec(&env, ApplyReuse::FunCache { udf: def });
    let op = ApplyOp::new(frame_source(&env, 12), spec.clone(), apply_schema(&env)).unwrap();
    env.drain(Box::new(op)).unwrap();
    let retries_cold = env.storage.metrics().snapshot().udf_retries;
    assert!(retries_cold > 0, "misses invoke the model and can fail");
    // A fully warm cache never invokes the model, so nothing can fail.
    let op = ApplyOp::new(frame_source(&env, 12), spec, apply_schema(&env)).unwrap();
    env.drain(Box::new(op)).unwrap();
    let m = env.storage.metrics().snapshot();
    assert_eq!(m.udf_retries, retries_cold, "{m:?}");
    assert_eq!(m.udf_gave_up, 0, "{m:?}");
}
