//! # eva-exec
//!
//! The EXECUTION ENGINE of EVA-RS: a pull-based, batched operator tree
//! executing [`eva_planner::PhysPlan`]s.
//!
//! The fused apply operator ([`ops::apply`]) implements the
//! materialization-aware transformation of the paper (Fig. 4): per input
//! tuple it probes the UDF's materialized view (the LEFT OUTER JOIN read),
//! evaluates the simulated model only on misses (the conditional APPLY's
//! NULL guard), and appends fresh results to the view (STORE). It equally
//! implements the FunCache baseline's tuple-level hashing cache.
//!
//! Every IO/UDF/hash action charges the session's virtual clock, producing
//! the per-category time breakdowns of Fig. 6 and Table 4.

pub mod config;
pub mod context;
pub mod engine;
pub mod funcache;
pub mod ops;
pub mod pool;

#[cfg(test)]
mod ops_tests;
#[cfg(test)]
mod testing;

pub use config::ExecConfig;
pub use context::ExecCtx;
pub use engine::{execute, execute_governed, execute_with_pool, QueryOutput, RESULT_ROW_BYTES};
pub use funcache::{FunCacheKey, FunCacheTable};
pub use pool::{LaneReport, WorkerPool};
