//! Execution configuration.

/// Tunables of the execution engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Rows per batch pulled through the operator tree (the paper batches
    /// GPU inference at 20 and materialization at 200 MiB; costs here are
    /// per-tuple, so the batch size only affects bookkeeping granularity).
    pub batch_size: usize,
    /// Simulated per-input-row overhead of the APPLY machinery (argument
    /// marshalling, join bookkeeping) — the "Apply" series of Fig. 6b.
    pub apply_overhead_ms: f64,
    /// Evaluate UDF batches on worker threads when a batch has at least
    /// this many misses (wall-clock speedup only; simulated cost is
    /// identical either way). `0` disables threading.
    pub parallel_eval_threshold: usize,
    /// Fuzzy bbox reuse for box-level UDF views (the paper's §6 future
    /// work): on an exact-key miss, accept the stored result of the
    /// highest-IoU box on the same frame when IoU ≥ this threshold.
    /// `None` (the default) keeps reuse exact.
    pub fuzzy_box_iou: Option<f32>,
    /// Probe views on worker threads when a batch probes at least this many
    /// keys (wall-clock speedup only; the read cost is summed as an integer
    /// row count and charged once, so the simulated cost is bit-identical
    /// either way). `0` disables threading.
    pub parallel_probe_threshold: usize,
    /// How many times a transient UDF failure (a flaky model server) is
    /// retried before the query gives up with an error. `0` fails on the
    /// first transient error.
    pub udf_retry_budget: u32,
    /// Simulated backoff before retry k (1-based): `backoff_ms · 2^(k−1)`.
    /// Charged to the `Apply` cost category on the caller thread, so the
    /// parallel == serial cost identity survives injected faults.
    pub udf_retry_backoff_ms: f64,
    /// Frames per morsel for morsel-driven parallel scans. Equal to
    /// `batch_size` by default so an engaged parallel pipeline emits
    /// batches on exactly the serial cadence (same batch boundaries, same
    /// `columnar_batches` counts). Changing it is equivalent, counter-wise,
    /// to running serial with `batch_size = morsel_rows`.
    pub morsel_rows: usize,
    /// Run a UDF-free scan pipeline morsel-parallel only when its scan
    /// range holds at least this many frames (wall-clock speedup only; the
    /// accounting replay keeps simulated cost and deterministic counters
    /// bit-identical to serial). `0` disables parallel pipelines. The
    /// default keeps small interactive queries — and the plan goldens —
    /// on the serial path.
    pub parallel_scan_min_rows: u64,
    /// Testing hook: pivot scan output to row batches at the source,
    /// forcing the whole query down the row-at-a-time path (and disabling
    /// parallel pipelines, which are columnar-only). The differential
    /// fuzzer's columnar-vs-row oracle flips this; production configs leave
    /// it off.
    pub force_row_path: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            batch_size: 1024,
            apply_overhead_ms: 0.05,
            parallel_eval_threshold: 256,
            fuzzy_box_iou: None,
            parallel_probe_threshold: 1024,
            udf_retry_budget: 2,
            udf_retry_backoff_ms: 5.0,
            morsel_rows: 1024,
            parallel_scan_min_rows: 4096,
            force_row_path: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExecConfig::default();
        assert!(c.batch_size > 0);
        assert!(c.apply_overhead_ms >= 0.0);
        // Default morsel size matches the batch size so engaged parallel
        // pipelines keep the serial batch cadence (counter identity).
        assert_eq!(c.morsel_rows, c.batch_size);
        assert!(c.parallel_scan_min_rows > 0);
    }
}
