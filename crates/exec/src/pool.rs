//! A persistent worker pool for wall-clock parallelism on the reuse hot
//! path (UDF evaluation and large view probes).
//!
//! The previous implementation spawned a fresh `crossbeam::thread::scope`
//! per batch — thread creation on every batch of every query. The pool
//! keeps a fixed set of workers parked on a channel instead; apply
//! operators submit closures and block for the indexed results.
//!
//! Invariant (see DESIGN.md): workers never touch a [`SimClock`] — the
//! clock is not `Sync`, and all simulated-cost charges stay on the caller
//! thread so parallelism can never change a `CostBreakdown`. Workers only
//! compute; callers account.

use crossbeam::channel::{unbounded, Sender};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// What one lane of a [`WorkerPool::run_stealing`] call did: how many items
/// it executed, how many of those it stole from another lane's deque, and
/// how long the lane was busy. `executed`/`stolen` splits are
/// scheduling-dependent (callers must treat them as nondeterministic);
/// only the *sum* of `executed` across lanes is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneReport {
    /// Items this lane ran (own + stolen).
    pub executed: u64,
    /// Subset of `executed` popped from another lane's deque.
    pub stolen: u64,
    /// Wall-clock busy time of the lane, nanoseconds.
    pub wall_ns: u64,
}

/// A fixed-size pool of worker threads executing submitted closures.
pub struct WorkerPool {
    tx: Sender<Job>,
    n_workers: usize,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool, spawned lazily on first use and shared by
    /// every session (concurrent sessions queue into the same workers).
    /// An `EVA_THREADS` environment override takes precedence over the
    /// detected core count (clamped to `[1, 64]`); experiments use it to
    /// pin the pool size, and `MetricsSnapshot::n_workers` records what the
    /// session actually ran with.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            let n = std::env::var("EVA_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .map(|n| n.clamp(1, 64))
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                        .clamp(2, 8)
                });
            WorkerPool::new(n)
        })
    }

    /// A pool with exactly `n` workers. Prefer [`WorkerPool::global`];
    /// dedicated pools are for tests and benchmarks.
    pub fn new(n: usize) -> WorkerPool {
        let n = n.max(1);
        let (tx, rx) = unbounded::<Job>();
        for i in 0..n {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("eva-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
        }
        WorkerPool { tx, n_workers: n }
    }

    /// Number of worker threads (callers size their chunking to this).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Run every task on the pool and return their results in task order.
    /// Blocks the calling thread until all tasks finish. A panicking task
    /// is re-raised on the caller without poisoning the worker.
    #[allow(clippy::type_complexity)]
    pub fn run<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let (done_tx, done_rx) = unbounded::<(usize, std::thread::Result<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(task));
                let _ = done_tx.send((i, result));
            });
            self.tx.send(job).expect("worker pool channel closed");
        }
        drop(done_tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = done_rx.recv().expect("pool worker dropped a task");
            match result {
                Ok(v) => out[i] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("pool task result missing"))
            .collect()
    }

    /// Run `n_items` independent work items with per-lane deques and work
    /// stealing, returning results **in item order** plus one
    /// [`LaneReport`] per lane.
    ///
    /// Items are pre-assigned round-robin to `min(n_workers, n_items)`
    /// lanes; each lane pops its own deque from the front and, when empty,
    /// steals from the *back* of the other lanes' deques. Which lane runs
    /// which item is scheduling-dependent, but the result vector is
    /// scattered back by item index, so the output (and anything the caller
    /// derives from it in item order) is deterministic regardless of
    /// stealing. `work` receives the item index and must be pure compute:
    /// no clock, no metrics (the caller-thread charging rule).
    #[allow(clippy::type_complexity)]
    pub fn run_stealing<T, F>(&self, n_items: usize, work: F) -> (Vec<T>, Vec<LaneReport>)
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        let (results, reports) = self.run_stealing_cancellable(n_items, || false, work);
        let results = results
            .into_iter()
            .map(|slot| slot.expect("work-stealing item result missing"))
            .collect();
        (results, reports)
    }

    /// [`run_stealing`](Self::run_stealing) with a cooperative cancellation
    /// probe: every lane calls `cancel()` before each dequeue/steal and
    /// stops draining once it returns `true`. Results come back **in item
    /// order** with `None` for items no lane ran — the caller decides what
    /// a gap means (typically: replay accounting for the completed prefix,
    /// then surface `EvaError::Cancelled`). The pool itself stays fully
    /// reusable after a cancelled round; lanes park back on the shared
    /// channel exactly as after a completed one.
    #[allow(clippy::type_complexity)]
    pub fn run_stealing_cancellable<T, F, C>(
        &self,
        n_items: usize,
        cancel: C,
        work: F,
    ) -> (Vec<Option<T>>, Vec<LaneReport>)
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
        C: Fn() -> bool + Send + Sync + 'static,
    {
        if n_items == 0 {
            return (Vec::new(), Vec::new());
        }
        let n_lanes = self.n_workers.min(n_items).max(1);
        let mut deques: Vec<Mutex<VecDeque<usize>>> =
            (0..n_lanes).map(|_| Mutex::new(VecDeque::new())).collect();
        for item in 0..n_items {
            deques[item % n_lanes].get_mut().unwrap().push_back(item);
        }
        let deques = Arc::new(deques);
        let work = Arc::new(work);
        let cancel = Arc::new(cancel);
        let tasks: Vec<Box<dyn FnOnce() -> (Vec<(usize, T)>, LaneReport) + Send>> = (0..n_lanes)
            .map(|lane| {
                let deques = Arc::clone(&deques);
                let work = Arc::clone(&work);
                let cancel = Arc::clone(&cancel);
                Box::new(move || {
                    let started = Instant::now();
                    let mut done: Vec<(usize, T)> = Vec::new();
                    let mut report = LaneReport::default();
                    loop {
                        // Cooperative cancellation: observed between items,
                        // never mid-item.
                        if cancel() {
                            break;
                        }
                        // Own work first (front of own deque)...
                        let mut next = deques[lane].lock().unwrap().pop_front();
                        let mut stolen = false;
                        if next.is_none() {
                            // ...then steal from the back of the others.
                            for offset in 1..deques.len() {
                                let victim = (lane + offset) % deques.len();
                                if let Some(item) = deques[victim].lock().unwrap().pop_back() {
                                    next = Some(item);
                                    stolen = true;
                                    break;
                                }
                            }
                        }
                        let Some(item) = next else { break };
                        done.push((item, work(item)));
                        report.executed += 1;
                        if stolen {
                            report.stolen += 1;
                        }
                    }
                    report.wall_ns = started.elapsed().as_nanos() as u64;
                    (done, report)
                }) as Box<dyn FnOnce() -> (Vec<(usize, T)>, LaneReport) + Send>
            })
            .collect();
        let lane_outs = self.run(tasks);
        let mut results: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
        let mut reports = Vec::with_capacity(n_lanes);
        for (done, report) in lane_outs {
            for (item, value) in done {
                debug_assert!(results[item].is_none(), "item {item} ran twice");
                results[item] = Some(value);
            }
            reports.push(report);
        }
        (results, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i: usize| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_across_rounds() {
        let pool = WorkerPool::new(2);
        for round in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
                .map(|i: usize| Box::new(move || round + i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            assert_eq!(pool.run(tasks).len(), 8);
        }
    }

    #[test]
    fn global_pool_is_shared_and_concurrent() {
        let mut joins = Vec::new();
        for t in 0..4 {
            joins.push(std::thread::spawn(move || {
                let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
                    .map(|i: usize| {
                        Box::new(move || t * 100 + i) as Box<dyn FnOnce() -> usize + Send>
                    })
                    .collect();
                WorkerPool::global().run(tasks)
            }));
        }
        for (t, j) in joins.into_iter().enumerate() {
            let out = j.join().unwrap();
            assert_eq!(out[0], t * 100);
            assert_eq!(out.len(), 16);
        }
    }

    #[test]
    fn stealing_results_come_back_in_item_order() {
        let pool = WorkerPool::new(4);
        let (out, reports) = pool.run_stealing(33, |i| i * 3);
        assert_eq!(out, (0..33).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(reports.len(), 4);
        let executed: u64 = reports.iter().map(|r| r.executed).sum();
        let stolen: u64 = reports.iter().map(|r| r.stolen).sum();
        assert_eq!(executed, 33);
        assert!(stolen <= executed);
    }

    #[test]
    fn stealing_handles_fewer_items_than_workers() {
        let pool = WorkerPool::new(8);
        let (out, reports) = pool.run_stealing(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        // Lanes are capped at the item count — no idle lanes reported.
        assert_eq!(reports.len(), 3);
        let (out, reports) = pool.run_stealing(0, |i: usize| i);
        assert!(out.is_empty());
        assert!(reports.is_empty());
    }

    #[test]
    fn skewed_items_all_complete_under_stealing() {
        // One pathologically slow item pinned to lane 0: the other lanes
        // drain everything else by stealing, and the result order still
        // comes back by item index.
        let pool = WorkerPool::new(4);
        let (out, reports) = pool.run_stealing(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(reports.iter().map(|r| r.executed).sum::<u64>(), 64);
    }

    #[test]
    fn stealing_runs_every_item_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkerPool::new(3);
        let hits = Arc::new((0..50).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
        let hits2 = Arc::clone(&hits);
        let (out, _) = pool.run_stealing(50, move |i| {
            hits2[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), 50);
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn cancellable_with_never_cancel_matches_run_stealing() {
        let pool = WorkerPool::new(4);
        let (out, reports) = pool.run_stealing_cancellable(17, || false, |i| i * 5);
        assert_eq!(out, (0..17).map(|i| Some(i * 5)).collect::<Vec<_>>());
        assert_eq!(reports.iter().map(|r| r.executed).sum::<u64>(), 17);
    }

    #[test]
    fn cancelled_round_leaves_gaps_and_a_reusable_pool() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = WorkerPool::new(2);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_probe = Arc::clone(&stop);
        let stop_work = Arc::clone(&stop);
        let (out, _) = pool.run_stealing_cancellable(
            64,
            move || stop_probe.load(Ordering::SeqCst),
            move |i| {
                if i == 0 {
                    // Lane 0's first item flips the flag; every other item
                    // stalls until it does, so lanes cannot drain the round
                    // before the cancellation lands.
                    stop_work.store(true, Ordering::SeqCst);
                } else {
                    let deadline = Instant::now() + std::time::Duration::from_secs(5);
                    while !stop_work.load(Ordering::SeqCst) && Instant::now() < deadline {
                        std::hint::spin_loop();
                    }
                }
                i
            },
        );
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], Some(0));
        assert!(
            out.iter().any(|slot| slot.is_none()),
            "cancellation mid-round must leave unran items"
        );
        // The pool is fully reusable after a cancelled round.
        let (out, _) = pool.run_stealing(8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
                vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
            pool.run(tasks);
        }));
        assert!(result.is_err());
        // The worker that caught the panic is still usable.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![Box::new(|| 7), Box::new(|| 8)];
        assert_eq!(pool.run(tasks), vec![7, 8]);
    }
}
