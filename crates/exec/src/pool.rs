//! A persistent worker pool for wall-clock parallelism on the reuse hot
//! path (UDF evaluation and large view probes).
//!
//! The previous implementation spawned a fresh `crossbeam::thread::scope`
//! per batch — thread creation on every batch of every query. The pool
//! keeps a fixed set of workers parked on a channel instead; apply
//! operators submit closures and block for the indexed results.
//!
//! Invariant (see DESIGN.md): workers never touch a [`SimClock`] — the
//! clock is not `Sync`, and all simulated-cost charges stay on the caller
//! thread so parallelism can never change a `CostBreakdown`. Workers only
//! compute; callers account.

use crossbeam::channel::{unbounded, Sender};
use std::panic::AssertUnwindSafe;
use std::sync::OnceLock;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted closures.
pub struct WorkerPool {
    tx: Sender<Job>,
    n_workers: usize,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool, spawned lazily on first use and shared by
    /// every session (concurrent sessions queue into the same workers).
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 8);
            WorkerPool::new(n)
        })
    }

    /// A pool with exactly `n` workers. Prefer [`WorkerPool::global`];
    /// dedicated pools are for tests and benchmarks.
    pub fn new(n: usize) -> WorkerPool {
        let n = n.max(1);
        let (tx, rx) = unbounded::<Job>();
        for i in 0..n {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("eva-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
        }
        WorkerPool { tx, n_workers: n }
    }

    /// Number of worker threads (callers size their chunking to this).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Run every task on the pool and return their results in task order.
    /// Blocks the calling thread until all tasks finish. A panicking task
    /// is re-raised on the caller without poisoning the worker.
    #[allow(clippy::type_complexity)]
    pub fn run<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let (done_tx, done_rx) = unbounded::<(usize, std::thread::Result<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(task));
                let _ = done_tx.send((i, result));
            });
            self.tx.send(job).expect("worker pool channel closed");
        }
        drop(done_tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = done_rx.recv().expect("pool worker dropped a task");
            match result {
                Ok(v) => out[i] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("pool task result missing"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i: usize| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_across_rounds() {
        let pool = WorkerPool::new(2);
        for round in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
                .map(|i: usize| Box::new(move || round + i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            assert_eq!(pool.run(tasks).len(), 8);
        }
    }

    #[test]
    fn global_pool_is_shared_and_concurrent() {
        let mut joins = Vec::new();
        for t in 0..4 {
            joins.push(std::thread::spawn(move || {
                let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
                    .map(|i: usize| {
                        Box::new(move || t * 100 + i) as Box<dyn FnOnce() -> usize + Send>
                    })
                    .collect();
                WorkerPool::global().run(tasks)
            }));
        }
        for (t, j) in joins.into_iter().enumerate() {
            let out = j.join().unwrap();
            assert_eq!(out[0], t * 100);
            assert_eq!(out.len(), 16);
        }
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> =
                vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
            pool.run(tasks);
        }));
        assert!(result.is_err());
        // The worker that caught the panic is still usable.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![Box::new(|| 7), Box::new(|| 8)];
        assert_eq!(pool.run(tasks), vec![7, 8]);
    }
}
