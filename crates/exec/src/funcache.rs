//! The FunCache baseline's tuple-level function cache (§5.1).
//!
//! An in-memory hash table mapping `(udf, 128-bit xxHash of the input
//! arguments)` to the UDF's output rows. The defining overhead of this
//! approach — hashing the raw frame bytes on **every** invocation, hit or
//! miss — is charged to the virtual clock by the apply operator.
//!
//! UDF names are interned to small integer ids, so building the per-row
//! cache key allocates nothing; cached values are `Arc<[Row]>`, so hits
//! share rows instead of copying them.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use eva_common::hash::xxhash128;
use eva_common::Row;

/// A fully-interned cache key: UDF id plus the 128-bit argument hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunCacheKey {
    udf: u32,
    lo: u64,
    hi: u64,
}

/// Shared tuple-level cache. Cheap to clone; contents live for a workload.
#[derive(Debug, Clone, Default)]
pub struct FunCacheTable {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// UDF name → interned id. Read-locked on the hot path; a write lock is
    /// only taken the first time a name is seen.
    names: RwLock<HashMap<String, u32>>,
    map: Mutex<HashMap<FunCacheKey, Arc<[Row]>>>,
}

impl FunCacheTable {
    /// Fresh empty cache.
    pub fn new() -> FunCacheTable {
        FunCacheTable::default()
    }

    /// Intern a UDF name to its small id (allocation-free after the first
    /// call per name).
    fn intern(&self, udf: &str) -> u32 {
        if let Some(&id) = self.inner.names.read().get(udf) {
            return id;
        }
        let mut names = self.inner.names.write();
        if let Some(&id) = names.get(udf) {
            return id;
        }
        let id = names.len() as u32;
        names.insert(udf.to_string(), id);
        id
    }

    /// Compute the cache key for raw argument bytes.
    pub fn key(&self, udf: &str, arg_bytes: &[u8]) -> FunCacheKey {
        let (lo, hi) = xxhash128(arg_bytes);
        FunCacheKey {
            udf: self.intern(udf),
            lo,
            hi,
        }
    }

    /// Look up previously cached results (a hit shares the stored rows).
    pub fn get(&self, key: &FunCacheKey) -> Option<Arc<[Row]>> {
        self.inner.map.lock().get(key).map(Arc::clone)
    }

    /// Insert results for a key.
    pub fn insert(&self, key: FunCacheKey, rows: Arc<[Row]>) {
        self.inner.map.lock().insert(key, rows);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.map.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.map.lock().is_empty()
    }

    /// Drop everything (workload restart). Interned names survive — ids
    /// stay stable for the session.
    pub fn clear(&self) {
        self.inner.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::Value;

    #[test]
    fn round_trip() {
        let c = FunCacheTable::new();
        let k = c.key("det", b"frame-0-bytes");
        assert!(c.get(&k).is_none());
        c.insert(k, vec![vec![Value::Int(1)]].into());
        assert_eq!(c.get(&k).unwrap()[0][0], Value::Int(1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn keys_distinguish_udf_and_bytes() {
        let c = FunCacheTable::new();
        let a = c.key("det", b"x");
        let b = c.key("det", b"y");
        let other = c.key("other", b"x");
        assert_ne!(a, b);
        assert_ne!(a, other);
    }

    #[test]
    fn interning_is_stable() {
        let c = FunCacheTable::new();
        let a = c.key("det", b"x");
        let b = c.key("det", b"x");
        assert_eq!(a, b, "same name + bytes → same key");
        c.clear();
        assert_eq!(c.key("det", b"x"), a, "ids survive a clear");
    }

    #[test]
    fn hits_share_rows() {
        let c = FunCacheTable::new();
        let k = c.key("det", b"bytes");
        c.insert(k, vec![vec![Value::Int(1)]].into());
        let a = c.get(&k).unwrap();
        let b = c.get(&k).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache hits must be zero-copy");
    }
}
