//! The FunCache baseline's tuple-level function cache (§5.1).
//!
//! An in-memory hash table mapping `(udf name, 128-bit xxHash of the input
//! arguments)` to the UDF's output rows. The defining overhead of this
//! approach — hashing the raw frame bytes on **every** invocation, hit or
//! miss — is charged to the virtual clock by the apply operator.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use eva_common::hash::xxhash128;
use eva_common::Row;

/// Shared tuple-level cache. Cheap to clone; contents live for a workload.
#[derive(Debug, Clone, Default)]
pub struct FunCacheTable {
    inner: Arc<Mutex<HashMap<(String, u64, u64), Vec<Row>>>>,
}

impl FunCacheTable {
    /// Fresh empty cache.
    pub fn new() -> FunCacheTable {
        FunCacheTable::default()
    }

    /// Compute the cache key for raw argument bytes.
    pub fn key(udf: &str, arg_bytes: &[u8]) -> (String, u64, u64) {
        let (lo, hi) = xxhash128(arg_bytes);
        (udf.to_string(), lo, hi)
    }

    /// Look up previously cached results.
    pub fn get(&self, key: &(String, u64, u64)) -> Option<Vec<Row>> {
        self.inner.lock().get(key).cloned()
    }

    /// Insert results for a key.
    pub fn insert(&self, key: (String, u64, u64), rows: Vec<Row>) {
        self.inner.lock().insert(key, rows);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drop everything (workload restart).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_common::Value;

    #[test]
    fn round_trip() {
        let c = FunCacheTable::new();
        let k = FunCacheTable::key("det", b"frame-0-bytes");
        assert!(c.get(&k).is_none());
        c.insert(k.clone(), vec![vec![Value::Int(1)]]);
        assert_eq!(c.get(&k).unwrap()[0][0], Value::Int(1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn keys_distinguish_udf_and_bytes() {
        let a = FunCacheTable::key("det", b"x");
        let b = FunCacheTable::key("det", b"y");
        let c = FunCacheTable::key("other", b"x");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
