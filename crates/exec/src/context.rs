//! Execution context threaded through operators.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use eva_common::{MetricsSink, OpId, OpStats, QueryGovernor, SimClock, TraceSink};
use eva_storage::StorageEngine;
use eva_udf::{InvocationStats, UdfBreaker, UdfRegistry};
use eva_video::VideoDataset;

use crate::config::ExecConfig;
use crate::funcache::FunCacheTable;
use crate::pool::WorkerPool;

/// Per-operator runtime statistics for one query execution.
///
/// Deliberately **not** `Sync` (a `RefCell`, like [`SimClock`]): every
/// update happens on the caller thread. Worker-pool closures never touch the
/// collector — they return counts and the caller records once — so parallel
/// and serial runs produce identical statistics.
#[derive(Debug, Default)]
pub struct OpStatsCollector {
    cells: RefCell<BTreeMap<OpId, OpStats>>,
}

impl OpStatsCollector {
    /// Fresh, empty collector.
    pub fn new() -> OpStatsCollector {
        OpStatsCollector::default()
    }

    /// Apply `f` to the stats cell of operator `id`, creating it zeroed on
    /// first touch.
    pub fn update(&self, id: OpId, f: impl FnOnce(&mut OpStats)) {
        f(self.cells.borrow_mut().entry(id).or_default())
    }

    /// A copy of every operator's stats, keyed by operator id.
    pub fn snapshot(&self) -> BTreeMap<OpId, OpStats> {
        self.cells.borrow().clone()
    }

    /// Drop all recorded stats.
    pub fn reset(&self) {
        self.cells.borrow_mut().clear()
    }
}

/// Everything an operator needs at run time.
pub struct ExecCtx<'a> {
    /// Storage engine (scans, view probes, STORE appends).
    pub storage: &'a StorageEngine,
    /// Simulated-model registry.
    pub registry: &'a UdfRegistry,
    /// Invocation statistics (Table 2/3 accounting).
    pub stats: &'a InvocationStats,
    /// The virtual clock.
    pub clock: &'a SimClock,
    /// The dataset backing the query's table (single-table queries).
    pub dataset: Arc<VideoDataset>,
    /// FunCache baseline table (unused under other strategies).
    pub funcache: &'a FunCacheTable,
    /// Per-operator statistics for this execution (`EXPLAIN ANALYZE`).
    pub op_stats: &'a OpStatsCollector,
    /// Tunables.
    pub config: ExecConfig,
    /// Worker pool override. `None` (the production path) uses
    /// [`WorkerPool::global`]; tests and scaling benchmarks inject
    /// dedicated pools to pin the worker count.
    pub pool: Option<&'a WorkerPool>,
    /// Per-query governance: cancellation token, deadline, and the memory
    /// accountant. Defaults to [`QueryGovernor::ungoverned`] (all checks are
    /// near-free no-ops); the session builds a governed one per query.
    pub governor: QueryGovernor,
    /// UDF circuit breaker shared across the session's queries; `None` for
    /// direct executor users and unit tests (no breaker gating).
    pub breaker: Option<&'a UdfBreaker>,
}

impl ExecCtx<'_> {
    /// The session-wide metrics sink (owned by the storage engine so every
    /// layer sharing the engine shares the counters).
    pub fn metrics(&self) -> &MetricsSink {
        self.storage.metrics()
    }

    /// The session-wide trace sink (owned by the storage engine, like the
    /// metrics sink, so operator spans and storage-level spans land in one
    /// tree). Tracing records simulated cost and wall time *separately* and
    /// never touches the clock or the counters — see `eva_common::trace`.
    pub fn trace(&self) -> &TraceSink {
        self.storage.trace()
    }

    /// The worker pool this execution fans out on: the injected override if
    /// present, otherwise the shared process-wide pool.
    pub fn pool(&self) -> &WorkerPool {
        self.pool.unwrap_or_else(|| WorkerPool::global())
    }
}
