//! Execution context threaded through operators.

use std::sync::Arc;

use eva_common::SimClock;
use eva_storage::StorageEngine;
use eva_udf::{InvocationStats, UdfRegistry};
use eva_video::VideoDataset;

use crate::config::ExecConfig;
use crate::funcache::FunCacheTable;

/// Everything an operator needs at run time.
pub struct ExecCtx<'a> {
    /// Storage engine (scans, view probes, STORE appends).
    pub storage: &'a StorageEngine,
    /// Simulated-model registry.
    pub registry: &'a UdfRegistry,
    /// Invocation statistics (Table 2/3 accounting).
    pub stats: &'a InvocationStats,
    /// The virtual clock.
    pub clock: &'a SimClock,
    /// The dataset backing the query's table (single-table queries).
    pub dataset: Arc<VideoDataset>,
    /// FunCache baseline table (unused under other strategies).
    pub funcache: &'a FunCacheTable,
    /// Tunables.
    pub config: ExecConfig,
}
