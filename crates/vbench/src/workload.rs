//! Workload execution and reporting.

use serde::Serialize;

use eva_common::{CostBreakdown, MetricsSnapshot, Result};
use eva_core::EvaDb;

use crate::queries::QuerySpec;

/// A named list of queries run back-to-back from a clean state.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload label (e.g. `vbench-high`).
    pub name: String,
    /// Queries in execution order.
    pub queries: Vec<QuerySpec>,
}

impl Workload {
    /// Construct from a query set.
    pub fn new(name: impl Into<String>, queries: Vec<QuerySpec>) -> Workload {
        Workload {
            name: name.into(),
            queries,
        }
    }
}

/// Per-query outcome.
#[derive(Debug, Clone, Serialize)]
pub struct QueryReport {
    /// Query label.
    pub name: String,
    /// Result row count (used to validate result equivalence across
    /// strategies).
    pub n_rows: usize,
    /// Simulated seconds spent on this query.
    pub sim_secs: f64,
    /// Per-category breakdown (Fig. 6a / Table 4).
    pub breakdown: CostBreakdown,
    /// Wall-clock milliseconds actually spent.
    pub wall_ms: f64,
}

/// Whole-workload outcome.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadReport {
    /// Workload label.
    pub workload: String,
    /// Per-query reports in execution order.
    pub per_query: Vec<QueryReport>,
    /// Total simulated seconds.
    pub total_sim_secs: f64,
    /// Aggregate hit percentage (Table 2).
    pub hit_percentage: f64,
    /// Total materialized-view bytes at the end (§5.2 storage footprint).
    pub view_bytes: u64,
    /// Total / distinct UDF invocation counts (Eq. 7 inputs).
    pub total_invocations: u64,
    /// Distinct UDF invocations.
    pub distinct_invocations: u64,
    /// Runtime-metrics snapshot for the whole workload (probe hit rates,
    /// UDF calls avoided, zero-copy rows — see DESIGN.md §Observability).
    pub metrics: MetricsSnapshot,
}

/// Run a workload from a clean reuse state, capturing all metrics. The
/// session's strategy determines which system under test this measures.
pub fn run_workload(db: &mut EvaDb, workload: &Workload) -> Result<WorkloadReport> {
    db.reset_reuse_state();
    let metrics_before = db.metrics_snapshot();
    let mut per_query = Vec::with_capacity(workload.queries.len());
    for q in &workload.queries {
        let out = db.execute_sql(&q.sql)?.rows()?;
        per_query.push(QueryReport {
            name: q.name.clone(),
            n_rows: out.n_rows(),
            sim_secs: out.sim_secs(),
            breakdown: out.breakdown,
            wall_ms: out.wall_ms,
        });
    }
    let (total_invocations, distinct_invocations) = db.invocation_stats().totals();
    Ok(WorkloadReport {
        workload: workload.name.clone(),
        per_query,
        total_sim_secs: db.cost_snapshot().total_secs(),
        hit_percentage: db.invocation_stats().hit_percentage(),
        view_bytes: db.storage().total_view_bytes(),
        total_invocations,
        distinct_invocations,
        metrics: db.metrics_snapshot().since(&metrics_before),
    })
}

impl WorkloadReport {
    /// Speedup of this report relative to a reference (No-Reuse) report.
    pub fn speedup_over(&self, reference: &WorkloadReport) -> f64 {
        if self.total_sim_secs <= 0.0 {
            return 1.0;
        }
        reference.total_sim_secs / self.total_sim_secs
    }

    /// Result-cardinality fingerprint for cross-strategy validation.
    pub fn row_counts(&self) -> Vec<usize> {
        self.per_query.iter().map(|q| q.n_rows).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{vbench_high, DetectorKind};
    use eva_baselines::ReuseStrategy;
    use eva_core::SessionConfig;
    use eva_video::generator::generate;
    use eva_video::VideoConfig;

    fn tiny_db(strategy: ReuseStrategy) -> EvaDb {
        let mut db = EvaDb::new(SessionConfig::for_strategy(strategy)).unwrap();
        db.load_video(
            generate(VideoConfig {
                name: "v".into(),
                n_frames: 200,
                width: 96,
                height: 54,
                fps: 25.0,
                target_density: 6.0,
                person_fraction: 0.0,
                seed: 9,
            }),
            "video",
        )
        .unwrap();
        db
    }

    fn tiny_workload() -> Workload {
        Workload::new(
            "tiny-high",
            vbench_high(200, DetectorKind::Physical("fasterrcnn_resnet50"), false),
        )
    }

    #[test]
    fn eva_beats_no_reuse_on_high_overlap() {
        let w = tiny_workload();
        let mut no = tiny_db(ReuseStrategy::NoReuse);
        let r_no = run_workload(&mut no, &w).unwrap();
        let mut eva = tiny_db(ReuseStrategy::Eva);
        let r_eva = run_workload(&mut eva, &w).unwrap();
        assert_eq!(
            r_no.row_counts(),
            r_eva.row_counts(),
            "strategies must agree on results"
        );
        let speedup = r_eva.speedup_over(&r_no);
        assert!(speedup > 2.0, "EVA speedup on high-reuse: {speedup}");
        assert!(r_eva.hit_percentage > 30.0);
        assert_eq!(r_no.hit_percentage, 0.0);
        assert!(r_eva.view_bytes > 0);
    }

    #[test]
    fn report_carries_workload_name_and_metrics() {
        let w = Workload::new("w", vec![]);
        let mut db = tiny_db(ReuseStrategy::NoReuse);
        let r = run_workload(&mut db, &w).unwrap();
        assert_eq!(r.workload, "w");
        // An empty workload still embeds a (zeroed) metrics snapshot.
        assert_eq!(r.metrics.udf_calls_requested, 0);
        let copy = r.metrics;
        assert_eq!(copy, r.metrics, "snapshot is plain copyable data");
    }

    #[test]
    fn report_metrics_reflect_reuse() {
        let w = tiny_workload();
        let mut eva = tiny_db(ReuseStrategy::Eva);
        let r = run_workload(&mut eva, &w).unwrap();
        let m = &r.metrics;
        assert!(m.probe_hits > 0, "{m:?}");
        assert!(m.udf_calls_avoided > 0, "{m:?}");
        assert_eq!(m.probes, m.probe_hits + m.probe_misses, "{m:?}");
        assert_eq!(
            m.udf_calls_requested,
            m.udf_calls_executed + m.udf_calls_avoided,
            "{m:?}"
        );

        let mut no = tiny_db(ReuseStrategy::NoReuse);
        let r_no = run_workload(&mut no, &w).unwrap();
        assert_eq!(r_no.metrics.udf_calls_avoided, 0, "{:?}", r_no.metrics);
        assert_eq!(r_no.metrics.probe_hits, 0, "{:?}", r_no.metrics);
    }
}
