//! Derived benchmark metrics.

use std::collections::BTreeMap;

use eva_core::EvaDb;

use crate::queries::QuerySpec;

/// Average frame overlap between consecutive queries: the statistic vBENCH
/// uses to characterize reuse potential (4.5% for LOW, 50% for HIGH).
/// Overlap of two windows is |A ∩ B| / |A ∪ B|.
pub fn frame_overlap(queries: &[QuerySpec]) -> f64 {
    if queries.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for w in queries.windows(2) {
        let (a, b) = (w[0].window, w[1].window);
        let inter = (a.1.min(b.1) - a.0.max(b.0)).max(0.0);
        let union = (a.1.max(b.1) - a.0.min(b.0)).max(f64::MIN_POSITIVE);
        total += inter / union;
    }
    total / (queries.len() - 1) as f64
}

/// The Eq. 7 upper bound on workload speedup:
///
/// ```text
///            Σ_{all invocations} C_u
/// speedup ≤ ──────────────────────────
///            Σ_{distinct invocations} C_u
/// ```
///
/// computed from the session's invocation statistics and catalog costs after
/// a workload ran.
pub fn eq7_upper_bound(db: &EvaDb) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    let costs: BTreeMap<String, f64> = db
        .catalog()
        .udfs()
        .into_iter()
        .filter_map(|u| u.cost_ms.map(|c| (u.name, c)))
        .collect();
    for (name, counters) in db.invocation_stats().all() {
        let c = costs.get(&name).copied().unwrap_or(0.0);
        num += counters.total_invocations as f64 * c;
        den += counters.distinct_inputs as f64 * c;
    }
    if den <= 0.0 {
        1.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{vbench_high, vbench_low, DetectorKind};

    #[test]
    fn overlap_of_identical_windows_is_one() {
        let qs = vec![
            QuerySpec {
                name: "a".into(),
                window: (0.0, 0.5),
                sql: String::new(),
                n_udf_preds: 0,
                accuracy: "HIGH",
            },
            QuerySpec {
                name: "b".into(),
                window: (0.0, 0.5),
                sql: String::new(),
                n_udf_preds: 0,
                accuracy: "HIGH",
            },
        ];
        assert!((frame_overlap(&qs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_of_disjoint_windows_is_zero() {
        let qs = vec![
            QuerySpec {
                name: "a".into(),
                window: (0.0, 0.3),
                sql: String::new(),
                n_udf_preds: 0,
                accuracy: "HIGH",
            },
            QuerySpec {
                name: "b".into(),
                window: (0.5, 0.9),
                sql: String::new(),
                n_udf_preds: 0,
                accuracy: "HIGH",
            },
        ];
        assert_eq!(frame_overlap(&qs), 0.0);
        assert_eq!(frame_overlap(&qs[..1]), 0.0);
    }

    #[test]
    fn benchmark_sets_hit_their_targets() {
        let det = DetectorKind::Physical("fasterrcnn_resnet50");
        let high = frame_overlap(&vbench_high(14_000, det.clone(), false));
        let low = frame_overlap(&vbench_low(14_000, det, false));
        assert!(high > 4.0 * low, "high={high}, low={low}");
    }
}
