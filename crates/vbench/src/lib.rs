//! # eva-vbench
//!
//! The vBENCH benchmark of the paper (§5.1): query sets with low and high
//! reuse potential over the synthetic UA-DETRAC / Jackson datasets, workload
//! execution with full metric capture, and the derived quantities the
//! evaluation reports (hit percentage, workload speedup, Eq. 7 upper bound,
//! per-query time breakdowns).
//!
//! * **VBENCH-HIGH** — 8 queries iteratively refining one part of the video
//!   (zoom in / zoom out / shift, Table 1); consecutive frame overlap ≈ 50%.
//! * **VBENCH-LOW** — 8 queries skimming disjoint parts; overlap ≈ 4.5%.
//!
//! Each query has up to five predicate clauses — three on direct columns
//! (`id`, `label`, `score`) and up to two on UDFs (vehicle type, color) —
//! plus the detector CROSS APPLY.

pub mod metrics;
pub mod queries;
pub mod workload;

pub use metrics::{eq7_upper_bound, frame_overlap};
pub use queries::{vbench_high, vbench_low, DetectorKind, QuerySpec};
pub use workload::{run_workload, QueryReport, Workload, WorkloadReport};
