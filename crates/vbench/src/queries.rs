//! The vBENCH query sets.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How queries name the object detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorKind {
    /// A pinned physical model (the default for fair baseline comparison —
    /// §5.4: "all the queries in the VBENCH referred to an actual physical
    /// model").
    Physical(&'static str),
    /// The logical `ObjectDetector` task with a per-query accuracy, used by
    /// the Fig. 10 logical-reuse experiment.
    Logical,
}

/// One benchmark query: a frame window plus predicate clauses.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query label (`Q1`…`Q8`).
    pub name: String,
    /// Frame-id window `[lo, hi)` as fractions of the video length.
    pub window: (f64, f64),
    /// The generated EVA-QL text.
    pub sql: String,
    /// Number of UDF-based predicates (CarType/ColorDet) in the query.
    pub n_udf_preds: usize,
    /// Accuracy requested when the detector is logical.
    pub accuracy: &'static str,
}

struct QueryTemplate {
    window: (f64, f64),
    area: Option<f64>,
    cartype: Option<&'static str>,
    color: Option<&'static str>,
    label_car: bool,
    accuracy: &'static str,
    select_license: bool,
}

fn render(
    name: &str,
    t: &QueryTemplate,
    n_frames: u64,
    detector: &DetectorKind,
    filter_prefix: bool,
) -> QuerySpec {
    let lo = (t.window.0 * n_frames as f64).round() as u64;
    let hi = (t.window.1 * n_frames as f64).round() as u64;
    let mut preds: Vec<String> = Vec::new();
    if lo > 0 {
        preds.push(format!("id >= {lo}"));
    }
    if (hi as f64) < n_frames as f64 {
        preds.push(format!("id < {hi}"));
    }
    if filter_prefix {
        preds.push("specialized_filter(frame) = 'true'".to_string());
    }
    if t.label_car {
        preds.push("label = 'car'".to_string());
    }
    if let Some(a) = t.area {
        preds.push(format!("area(frame, bbox) > {a}"));
    }
    let mut n_udf_preds = 0;
    if let Some(ct) = t.cartype {
        preds.push(format!("cartype(frame, bbox) = '{ct}'"));
        n_udf_preds += 1;
    }
    if let Some(c) = t.color {
        preds.push(format!("colordet(frame, bbox) = '{c}'"));
        n_udf_preds += 1;
    }
    let apply = match detector {
        DetectorKind::Physical(model) => format!("{model}(frame)"),
        DetectorKind::Logical => {
            format!("objectdetector(frame) ACCURACY '{}'", t.accuracy)
        }
    };
    let projection = if t.select_license {
        "id, bbox, license(frame, bbox)"
    } else {
        "id, bbox"
    };
    QuerySpec {
        name: name.to_string(),
        window: t.window,
        sql: format!(
            "SELECT {projection} FROM video CROSS APPLY {apply} WHERE {}",
            preds.join(" AND ")
        ),
        n_udf_preds,
        accuracy: t.accuracy,
    }
}

/// VBENCH-HIGH: iterative refinement over one region (Table 1's zoom
/// in / zoom out / shift pattern). Consecutive frame overlap ≈ 50%.
pub fn vbench_high(n_frames: u64, detector: DetectorKind, filter_prefix: bool) -> Vec<QuerySpec> {
    let templates = [
        // Q1: the officer starts searching for a Nissan.
        QueryTemplate {
            window: (0.0, 0.714),
            area: Some(0.3),
            cartype: Some("Nissan"),
            color: None,
            label_car: true,
            accuracy: "HIGH",
            select_license: false,
        },
        // Q2: zoom out — relax the bbox-area constraint.
        QueryTemplate {
            window: (0.0, 0.714),
            area: None,
            cartype: Some("Nissan"),
            color: None,
            label_car: true,
            accuracy: "HIGH",
            select_license: false,
        },
        // Q3: zoom in — add the color constraint.
        QueryTemplate {
            window: (0.0, 0.714),
            area: Some(0.25),
            cartype: Some("Nissan"),
            color: Some("Gray"),
            label_car: true,
            accuracy: "HIGH",
            select_license: false,
        },
        // Q4: the traffic-monitoring app scans a shifted window at LOW
        // accuracy (the cross-application reuse of Listing 1's Q4).
        QueryTemplate {
            window: (0.357, 0.857),
            area: Some(0.15),
            cartype: None,
            color: None,
            label_car: true,
            accuracy: "LOW",
            select_license: false,
        },
        // Q5: refine within the shifted window with both attribute UDFs
        // over *all* box sizes (no area cut — the analyst casts a wide net).
        QueryTemplate {
            window: (0.357, 0.857),
            area: None,
            cartype: Some("Nissan"),
            color: Some("Gray"),
            label_car: true,
            accuracy: "MEDIUM",
            select_license: false,
        },
        // Q6: shift — a trailing window, color only (Table 1's Q6). The
        // LOW-accuracy request is where Algorithm 2's cross-model reuse can
        // *backfire*: reading a high-accuracy view yields more boxes for the
        // dependent ColorDet (the paper's Q4 pathology, §6).
        QueryTemplate {
            window: (0.536, 1.0),
            area: None,
            cartype: None,
            color: Some("Gray"),
            label_car: true,
            accuracy: "LOW",
            select_license: false,
        },
        // Q7: widen and re-apply both attribute constraints.
        QueryTemplate {
            window: (0.35, 0.9),
            area: Some(0.15),
            cartype: Some("Nissan"),
            color: Some("Gray"),
            label_car: true,
            accuracy: "MEDIUM",
            select_license: false,
        },
        // Q8: final pass reading license plates of all Nissan matches over
        // the full suspect window — nearly everything is materialized by now
        // (Table 4's exemplar query).
        QueryTemplate {
            window: (0.3, 1.0),
            area: None,
            cartype: Some("Nissan"),
            color: None,
            label_car: true,
            accuracy: "HIGH",
            select_license: true,
        },
    ];
    templates
        .iter()
        .enumerate()
        .map(|(i, t)| {
            render(
                &format!("Q{}", i + 1),
                t,
                n_frames,
                &detector,
                filter_prefix,
            )
        })
        .collect()
}

/// VBENCH-LOW: skimming through (nearly) disjoint windows; overlap ≈ 4.5%.
pub fn vbench_low(n_frames: u64, detector: DetectorKind, filter_prefix: bool) -> Vec<QuerySpec> {
    // Consecutive windows are (nearly) disjoint — the analyst skims — but
    // Q5 and Q7 *revisit* regions Q1/Q2 examined with refined predicates,
    // which is where the low-but-nonzero reuse of Table 2 comes from.
    let attrs: [(Option<f64>, Option<&'static str>, Option<&'static str>); 8] = [
        (None, Some("Nissan"), None),
        (None, None, Some("Gray")),
        (Some(0.25), Some("Toyota"), None),
        (None, None, Some("Red")),
        (None, Some("Nissan"), Some("Gray")), // revisit of Q1's region
        (None, None, Some("Black")),
        (Some(0.15), None, Some("Gray")), // revisit of Q2's region
        (None, Some("Ford"), None),
    ];
    let windows = [
        (0.00, 0.12),
        (0.115, 0.25),
        (0.245, 0.37),
        (0.365, 0.49),
        (0.01, 0.13), // revisits Q1
        (0.49, 0.61),
        (0.12, 0.26), // revisits Q2
        (0.61, 0.73),
    ];
    let accuracies = [
        "HIGH", "MEDIUM", "HIGH", "LOW", "HIGH", "MEDIUM", "HIGH", "LOW",
    ];
    windows
        .iter()
        .zip(attrs.iter())
        .zip(accuracies.iter())
        .enumerate()
        .map(|(i, ((w, (area, ct, col)), acc))| {
            let t = QueryTemplate {
                window: *w,
                area: *area,
                cartype: *ct,
                color: *col,
                label_car: true,
                accuracy: acc,
                select_license: false,
            };
            render(
                &format!("Q{}", i + 1),
                &t,
                n_frames,
                &detector,
                filter_prefix,
            )
        })
        .collect()
}

/// A seeded random permutation of a query set (Fig. 8's four workloads).
pub fn permute(queries: &[QuerySpec], seed: u64) -> Vec<QuerySpec> {
    let mut out = queries.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_set_has_eight_parseable_queries() {
        let qs = vbench_high(14_000, DetectorKind::Physical("fasterrcnn_resnet50"), false);
        assert_eq!(qs.len(), 8);
        for q in &qs {
            let parsed = eva_parser::parse(&q.sql);
            assert!(parsed.is_ok(), "{}: {:?}\n{}", q.name, parsed.err(), q.sql);
        }
        // Table 1 anchor: Q1 uses id < 10000 on the medium dataset.
        assert!(
            qs[0].sql.contains("id < 9996") || qs[0].sql.contains("id < 10000"),
            "{}",
            qs[0].sql
        );
    }

    #[test]
    fn low_set_windows_nearly_disjoint() {
        let qs = vbench_low(14_000, DetectorKind::Physical("fasterrcnn_resnet50"), false);
        assert_eq!(qs.len(), 8);
        let overlap = crate::metrics::frame_overlap(&qs);
        assert!(
            overlap < 0.10,
            "low-reuse set average overlap too high: {overlap}"
        );
    }

    #[test]
    fn high_set_overlap_near_half() {
        let qs = vbench_high(14_000, DetectorKind::Physical("fasterrcnn_resnet50"), false);
        let overlap = crate::metrics::frame_overlap(&qs);
        assert!(
            (0.35..0.85).contains(&overlap),
            "high-reuse set average overlap: {overlap}"
        );
    }

    #[test]
    fn logical_variant_uses_accuracy_clause() {
        let qs = vbench_high(1_000, DetectorKind::Logical, false);
        assert!(qs[0].sql.contains("objectdetector(frame) ACCURACY 'HIGH'"));
        assert!(qs[3].sql.contains("ACCURACY 'LOW'"), "{}", qs[3].sql);
    }

    #[test]
    fn filter_prefix_adds_specialized_filter() {
        let qs = vbench_high(1_000, DetectorKind::Physical("fasterrcnn_resnet50"), true);
        for q in &qs {
            assert!(q.sql.contains("specialized_filter(frame) = 'true'"));
            assert!(eva_parser::parse(&q.sql).is_ok());
        }
    }

    #[test]
    fn multi_udf_predicate_queries_exist() {
        let qs = vbench_high(14_000, DetectorKind::Physical("fasterrcnn_resnet50"), false);
        let multi = qs.iter().filter(|q| q.n_udf_preds >= 2).count();
        assert!(multi >= 2, "need multi-UDF-predicate queries for Fig. 9");
    }

    #[test]
    fn permutation_is_seeded_and_complete() {
        let qs = vbench_high(1_000, DetectorKind::Physical("fasterrcnn_resnet50"), false);
        let p1 = permute(&qs, 1);
        let p2 = permute(&qs, 1);
        let p3 = permute(&qs, 2);
        let names = |v: &[QuerySpec]| v.iter().map(|q| q.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&p1), names(&p2));
        assert_ne!(names(&p1), names(&p3));
        let mut sorted = names(&p1);
        sorted.sort();
        let mut expected = names(&qs);
        expected.sort();
        assert_eq!(sorted, expected, "permutation must keep all queries");
    }

    #[test]
    fn scaled_id_ranges_track_video_length() {
        // §5.5: "we alter the query set to scale the id predicate range".
        let short = vbench_high(7_500, DetectorKind::Physical("f"), false);
        let long = vbench_high(28_000, DetectorKind::Physical("f"), false);
        assert!(short[0].sql.contains("id < 5355"), "{}", short[0].sql);
        assert!(long[0].sql.contains("id < 19992"), "{}", long[0].sql);
    }
}
