//! Cross-application reuse (the paper's Q4): a traffic-monitoring app that
//! only needs a LOW-accuracy detector silently benefits from the
//! high-accuracy detections a tracking application materialized earlier.
//!
//! ```sh
//! cargo run --release -p eva-harness --example traffic_monitoring
//! ```

use eva_core::EvaDb;
use eva_video::{ua_detrac, UaDetracSize};

fn main() -> eva_common::Result<()> {
    let mut db = EvaDb::eva()?;
    db.load_video(ua_detrac(UaDetracSize::Short, 5), "video")?;

    // The tracking application runs first with a HIGH-accuracy logical
    // detector, materializing FasterRCNN-ResNet101 results.
    let tracking = "SELECT id, bbox FROM video CROSS APPLY \
                    objectdetector(frame) ACCURACY 'HIGH' \
                    WHERE id < 3000 AND label = 'car' \
                    AND cartype(frame, bbox) = 'Nissan'";
    let r = db.execute_sql(tracking)?.rows()?;
    println!(
        "tracking app (HIGH): {} rows, {:.0}s simulated",
        r.n_rows(),
        r.sim_secs()
    );

    // The traffic planner counts cars per timestamp. A LOW-accuracy model
    // would suffice — but EVA's Algorithm 2 notices the materialized
    // high-accuracy view covers these frames and reads it instead of
    // running YOLO-tiny.
    let monitoring = "SELECT timestamp, COUNT(*) AS cars FROM video CROSS APPLY \
                      objectdetector(frame) ACCURACY 'LOW' \
                      WHERE id < 3000 AND label = 'car' AND area(frame, bbox) > 0.15 \
                      GROUP BY timestamp";
    println!("\nmonitoring plan:\n{}", db.explain(monitoring)?);
    let r = db.execute_sql(monitoring)?.rows()?;
    println!(
        "traffic app (LOW): {} timestamp groups, {:.0}s simulated",
        r.n_rows(),
        r.sim_secs()
    );

    let stats = db.invocation_stats().all();
    for (name, c) in &stats {
        if c.total_invocations > 0 && c.countable() {
            println!(
                "  {name}: {} invocations, {} reused",
                c.total_invocations, c.reused_invocations
            );
        }
    }
    let yolo = db.invocation_stats().get("yolo_tiny");
    println!(
        "\nYOLO-tiny evaluations: {} (the LOW-accuracy request was served \
         from the high-accuracy view)",
        yolo.total_invocations - yolo.reused_invocations
    );
    Ok(())
}
