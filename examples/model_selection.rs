//! Model selection with Algorithm 2 (weighted set cover): how the optimizer
//! combines multiple materialized views with a cheap fallback model for one
//! logical vision task.
//!
//! ```sh
//! cargo run --release -p eva-harness --example model_selection
//! ```

use eva_core::EvaDb;
use eva_video::{ua_detrac, UaDetracSize};

fn main() -> eva_common::Result<()> {
    let mut db = EvaDb::eva()?;
    db.load_video(ua_detrac(UaDetracSize::Short, 19), "video")?;

    // Two applications materialize different detectors on different ranges.
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet101(frame) \
         WHERE id < 2500 AND label = 'car'",
    )?
    .rows()?;
    db.execute_sql(
        "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
         WHERE id >= 2500 AND id < 5000 AND label = 'car'",
    )?
    .rows()?;
    println!("materialized: rcnn101 over [0,2500), rcnn50 over [2500,5000)\n");

    // A LOW-accuracy logical query spanning both ranges plus fresh frames:
    // Algorithm 2 stitches together *both* views and falls back to
    // YOLO-tiny only for the uncovered tail.
    let q = "SELECT id, bbox FROM video CROSS APPLY \
             objectdetector(frame) ACCURACY 'LOW' \
             WHERE id < 6000 AND label = 'car'";
    println!(
        "plan for the spanning LOW-accuracy query:\n{}",
        db.explain(q)?
    );
    let r = db.execute_sql(q)?.rows()?;
    println!(
        "rows: {}, simulated seconds: {:.0}",
        r.n_rows(),
        r.sim_secs()
    );

    for (name, c) in db.invocation_stats().all() {
        if c.total_invocations > 0 && c.countable() {
            println!(
                "  {name}: total={} reused={} evaluated={}",
                c.total_invocations,
                c.reused_invocations,
                c.total_invocations - c.reused_invocations
            );
        }
    }
    println!(
        "\nYOLO-tiny ran only on frames neither view covers \
         (the greedy set cover of §4.3)."
    );
    Ok(())
}
