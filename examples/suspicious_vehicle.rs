//! The paper's motivating scenario (Listing 1): a law-enforcement officer
//! iteratively refines a search for a suspicious vehicle, and EVA reuses
//! each step's expensive UDF results in the next.
//!
//! ```sh
//! cargo run --release -p eva-harness --example suspicious_vehicle
//! ```

use eva_common::CostCategory;
use eva_core::EvaDb;
use eva_video::{ua_detrac, UaDetracSize};

fn main() -> eva_common::Result<()> {
    let mut db = EvaDb::eva()?;
    db.load_video(ua_detrac(UaDetracSize::Short, 11), "video")?;

    // Q1: the witness recalls a large Nissan some time in the first part of
    // the evening.
    let q1 = "SELECT id, bbox, colordet(frame, bbox) \
              FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
              WHERE id < 5000 AND label = 'car' AND area(frame, bbox) > 0.3 \
              AND cartype(frame, bbox) = 'Nissan'";

    // Q2: looking at Q1's hits, the witness adds the color; the officer
    // narrows the time window and reads license plates.
    let q2 = "SELECT id, bbox, license(frame, bbox) \
              FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
              WHERE id >= 2000 AND id < 5000 AND label = 'car' \
              AND area(frame, bbox) > 0.3 \
              AND colordet(frame, bbox) = 'Gray' \
              AND cartype(frame, bbox) = 'Nissan'";

    // Q3: with a plate in hand, search the whole video for it.
    let q3_template = "SELECT id FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                       WHERE label = 'car' AND area(frame, bbox) > 0.15 \
                       AND license(frame, bbox) = '{PLATE}'";

    let r1 = db.execute_sql(q1)?.rows()?;
    report("Q1 (find Nissans)", &r1);

    let r2 = db.execute_sql(q2)?.rows()?;
    report("Q2 (gray Nissans + plates)", &r2);

    // Grab a plate from Q2's output (or fall back to a made-up one).
    let plate = r2
        .batch
        .rows()
        .iter()
        .find_map(|row| match &row[2] {
            eva_common::Value::Str(s) if s != "unreadable" => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "ABC123".to_string());
    println!("  suspect plate: {plate}");

    let q3 = q3_template.replace("{PLATE}", &plate);
    let r3 = db.execute_sql(&q3)?.rows()?;
    report(&format!("Q3 (find plate {plate} anywhere)"), &r3);

    println!(
        "\nworkload hit rate: {:.1}%  |  view storage: {:.2} MiB",
        db.invocation_stats().hit_percentage(),
        db.storage().total_view_bytes() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

fn report(label: &str, out: &eva_exec::QueryOutput) {
    println!(
        "{label}: {} rows | sim {:.0}s (udf {:.0}s, view reads {:.0}s)",
        out.n_rows(),
        out.sim_secs(),
        out.breakdown.get(CostCategory::Udf) / 1000.0,
        out.breakdown.get(CostCategory::ReadView) / 1000.0,
    );
}
