//! Quickstart: load a synthetic video, run an exploratory query twice, and
//! watch EVA's materialized-view reuse kick in.
//!
//! ```sh
//! cargo run --release -p eva-harness --example quickstart
//! ```

use eva_core::EvaDb;
use eva_video::{ua_detrac, UaDetracSize};

fn main() -> eva_common::Result<()> {
    // A session running the full EVA reuse algorithm with the paper's model
    // zoo (three object detectors, CarType, ColorDet, License, Area…).
    let mut db = EvaDb::eva()?;

    // Load a deterministic synthetic stand-in for the UA-DETRAC dataset.
    db.load_video(ua_detrac(UaDetracSize::Short, 42), "video")?;

    let query = "SELECT id, bbox, cartype(frame, bbox) \
                 FROM video CROSS APPLY fasterrcnn_resnet50(frame) \
                 WHERE id < 1000 AND label = 'car' AND area(frame, bbox) > 0.2";

    println!("plan:\n{}", db.explain(query)?);

    let first = db.execute_sql(query)?.rows()?;
    println!(
        "cold run : {} rows, {:.1} simulated seconds ({:.0} ms wall)",
        first.n_rows(),
        first.sim_secs(),
        first.wall_ms
    );

    // The same exploration a second time: the detector and CarType results
    // now come from materialized views instead of the (simulated) GPU.
    let second = db.execute_sql(query)?.rows()?;
    println!(
        "warm run : {} rows, {:.1} simulated seconds ({:.0} ms wall)",
        second.n_rows(),
        second.sim_secs(),
        second.wall_ms
    );
    println!(
        "reuse speedup: {:.1}x, hit rate so far: {:.1}%",
        first.sim_secs() / second.sim_secs().max(1e-9),
        db.invocation_stats().hit_percentage()
    );

    // Show a few result rows.
    for row in first.batch.rows().iter().take(5) {
        println!("  {row:?}");
    }
    Ok(())
}
